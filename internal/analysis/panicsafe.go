package analysis

import (
	"go/ast"
	"go/types"
)

// panicsafeScopePackages limits the analyzer to the long-running layers
// where an unrecovered goroutine panic kills the whole process: the
// concurrency primitives, the HTTP daemon, the cluster layer (its
// health prober is a background goroutine living as long as the
// daemon), and the binaries (package main covers cmd/* and
// examples/*). Pipeline packages run inside parallel.Graph stages,
// which already recover for them.
var panicsafeScopePackages = map[string]bool{
	"parallel": true,
	"serve":    true,
	"cluster":  true,
	"main":     true,
	// stagecache is shared infrastructure under the daemon: any future
	// background goroutine (async spill, janitor) must not be able to
	// kill the process.
	"stagecache": true,
}

// PanicSafe flags `go` statements that launch a goroutine without a
// panic backstop. A panic inside a bare goroutine cannot be caught by
// any caller — it unwinds straight past every http.Handler and graph
// recover and crashes the daemon. Every goroutine in the scoped
// packages must either start with a deferred function literal that
// calls recover(), defer a same-package helper that does, or (for
// `go named(...)`) target a function whose own body installs one.
var PanicSafe = &Analyzer{
	Name: "panicsafe",
	Doc:  "goroutines in the daemon and concurrency layers must recover panics",
	Run:  runPanicSafe,
}

func runPanicSafe(pass *Pass) error {
	if pass.Pkg == nil || !panicsafeScopePackages[pass.Pkg.Name()] {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !hasRecoveringDefer(pass, decls, lit.Body) {
					pass.Reportf(g.Pos(),
						"goroutine does not recover panics; a panic here kills the process — start the body with a deferred recover")
				}
				return true
			}
			// `go named(...)` / `go recv.method(...)`: safe only if the
			// target is a same-package function whose body installs its
			// own recover.
			if fd := calleeDecl(pass, decls, g.Call); fd != nil && fd.Body != nil &&
				hasRecoveringDefer(pass, decls, fd.Body) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine target has no panic backstop; wrap it: go func() { defer ... recover() ...; f() }()")
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes this package's function declarations by their
// types object, so deferred calls to named helpers can be resolved to
// bodies.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// calleeDecl resolves a call to the *ast.FuncDecl of a function declared
// in this package, or nil (function literal variables, other packages,
// interface methods).
func calleeDecl(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return decls[fn]
}

// hasRecoveringDefer reports whether a statement directly in body's list
// is a defer that will observe a panic: a deferred function literal
// calling recover() in its own frame, or a deferred call to a
// same-package function that does.
func hasRecoveringDefer(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
			if callsRecoverDirectly(lit.Body) {
				return true
			}
			continue
		}
		if fd := calleeDecl(pass, decls, def.Call); fd != nil && fd.Body != nil &&
			callsRecoverDirectly(fd.Body) {
			return true
		}
	}
	return false
}

// callsRecoverDirectly reports whether body calls the recover builtin in
// its own frame. Nested function literals do not count: recover() only
// stops a panic when called directly by a deferred function, so a
// recover buried one closure deeper is a no-op that must not satisfy
// the check.
func callsRecoverDirectly(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" && len(call.Args) == 0 {
			found = true
			return false
		}
		return true
	})
	return found
}
