// Package analysistest runs analyzers over fixture packages and checks
// their findings against inline `// want "regexp"` annotations, the same
// convention the upstream go/analysis ecosystem uses:
//
//	sum += v // want `float accumulation`
//
// Each annotation must be matched by a finding on its line, and every
// finding must be matched by an annotation; either mismatch fails the
// test. Multiple quoted patterns on one line expect multiple findings.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package directory (relative to the calling
// test's working directory, conventionally "testdata/src/<name>") and
// checks analyzer a against the fixtures' want annotations. Suppression
// comments are honored, so fixtures can also exercise //rcpt:allow.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDirs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	pkgs, err := loader.Load(fixtureDirs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixtureDirs, err)
	}
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", pkg.PkgPath, terr)
		}
		collectWants(t, pkg, wants)
	}
	if t.Failed() {
		return
	}
	// Loaded() includes the module-internal dependencies the fixtures
	// import (parallel, table, rng, ...), so the dataflow engine has
	// their bodies and interprocedural checks behave exactly as they do
	// over the real tree.
	suite, err := analysis.RunSuite(pkgs, []*analysis.Analyzer{a}, loader.Loaded()...)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	findings := suite.Findings
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding at %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no %s finding matched %q", key, a.Name, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// collectWants parses `// want ...` comments into per-line expectations.
func collectWants(t *testing.T, pkg *analysis.Package, wants map[string][]*want) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, quoted := range wantRE.FindAllString(rest, -1) {
					pattern, err := unquoteWant(quoted)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, quoted, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					k := key(pos.Filename, pos.Line)
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	sanityCheckWantFiles(t, pkg)
}

func unquoteWant(quoted string) (string, error) {
	if strings.HasPrefix(quoted, "`") {
		return strings.Trim(quoted, "`"), nil
	}
	return strconv.Unquote(quoted)
}

// sanityCheckWantFiles guards against fixtures whose files parsed but
// contain no code (e.g. a stray empty file).
func sanityCheckWantFiles(t *testing.T, pkg *analysis.Package) {
	t.Helper()
	for _, f := range pkg.Files {
		if len(f.Decls) == 0 {
			var name string
			ast.Inspect(f, func(ast.Node) bool { return false })
			name = pkg.Fset.Position(f.Pos()).Filename
			t.Errorf("fixture file %s has no declarations", name)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose
// pattern matches the message; it reports whether one was found.
func claim(wants map[string][]*want, f analysis.Finding) bool {
	for _, w := range wants[key(f.Pos.Filename, f.Pos.Line)] {
		if !w.matched && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
