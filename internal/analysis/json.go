package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// JSONFinding is the stable wire form of one finding. Downstream tooling
// (CI annotators, editors) may rely on these field names; the golden
// test in json_test.go pins the shape.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	Count    int           `json:"count"`
	Findings []JSONFinding `json:"findings"`
}

// WriteJSON renders findings as an indented JSONReport. File names are
// rewritten relative to base when base is non-empty (and the rewrite
// succeeds), so output is stable across checkouts.
func WriteJSON(w io.Writer, findings []Finding, base string) error {
	rep := JSONReport{Count: len(findings), Findings: make([]JSONFinding, 0, len(findings))}
	for _, f := range findings {
		file := f.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil {
				file = filepath.ToSlash(rel)
			}
		}
		rep.Findings = append(rep.Findings, JSONFinding{
			File:     file,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
