package flow

import (
	"go/ast"
)

// CFG is a per-function control-flow graph: basic blocks of statements
// in execution order, linked by successor edges. It is deliberately
// statement-granular (conditions are not split out of their owning
// statements): the engine's clients use it for path questions like "is
// a lock still held when this call runs", which only need statement
// ordering and branching, not expression-level flow.
//
// Modelling notes: `goto` produces a conservative edge to the function
// exit (no client reasons across a goto); `fallthrough` links a switch
// case to the next case body; defer statements appear as ordinary
// statements in their lexical position (clients that care about defers
// scan for them explicitly, since their execution point is function
// exit).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Block is one straight-line statement sequence.
type Block struct {
	Stmts []ast.Stmt
	Succs []*Block
}

// CFG returns the control-flow graph of fn's body, building and
// caching it on first use.
func (e *Engine) CFG(fi *FuncInfo) *CFG {
	if fi == nil {
		return nil
	}
	if fi.cfg == nil {
		fi.cfg = buildCFG(fi.Decl.Body)
	}
	return fi.cfg
}

// BuildCFG constructs a CFG for any function body (used directly for
// closure bodies, which have no FuncInfo of their own).
func BuildCFG(body *ast.BlockStmt) *CFG { return buildCFG(body) }

type cfgBuilder struct {
	g   *CFG
	cur *Block
	// break/continue targets, innermost last; label maps a labeled
	// loop/switch statement to its targets.
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelTarget
}

type labelTarget struct {
	brk  *Block
	cont *Block
}

func buildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, labels: map[string]*labelTarget{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List, "")
	b.link(b.cur, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmtList appends stmts to the current block, splitting at control
// flow. label names the enclosing LabeledStmt when the first statement
// is a loop/switch, so labeled break/continue resolve.
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, label string) {
	for _, s := range stmts {
		b.stmt(s, label)
		label = ""
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")
	case *ast.LabeledStmt:
		b.labels[s.Label.Name] = &labelTarget{}
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, s) // condition evaluates here
		head := b.cur
		join := b.newBlock()
		b.cur = b.newBlock()
		b.link(head, b.cur)
		b.stmtList(s.Body.List, "")
		b.link(b.cur, join)
		if s.Else != nil {
			b.cur = b.newBlock()
			b.link(head, b.cur)
			b.stmt(s.Else, "")
			b.link(b.cur, join)
		} else {
			b.link(head, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		head := b.newBlock()
		exit := b.newBlock()
		b.link(b.cur, head)
		head.Stmts = append(head.Stmts, s) // condition evaluates here
		if s.Cond != nil {
			b.link(head, exit)
		}
		b.pushLoop(label, exit, head)
		b.cur = b.newBlock()
		b.link(head, b.cur)
		b.stmtList(s.Body.List, "")
		if s.Post != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Post)
		}
		b.link(b.cur, head)
		b.popLoop()
		b.cur = exit
	case *ast.RangeStmt:
		head := b.newBlock()
		exit := b.newBlock()
		b.link(b.cur, head)
		head.Stmts = append(head.Stmts, s)
		b.link(head, exit) // ranges can be empty
		b.pushLoop(label, exit, head)
		b.cur = b.newBlock()
		b.link(head, b.cur)
		b.stmtList(s.Body.List, "")
		b.link(b.cur, head)
		b.popLoop()
		b.cur = exit
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.switchLike(s, label)
	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.link(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.branch(s)
		b.cur = b.newBlock() // unreachable continuation
	default:
		// Plain statement (incl. defer, go, expr, assign, decl).
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// switchLike lowers switch / type switch / select: every clause body is
// a successor of the head, all clauses join afterwards, break targets
// the join, fallthrough chains to the next case body.
func (b *cfgBuilder) switchLike(s ast.Stmt, label string) {
	var init ast.Stmt
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init = s.Init
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		init = s.Init
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	if init != nil {
		b.cur.Stmts = append(b.cur.Stmts, init)
	}
	b.cur.Stmts = append(b.cur.Stmts, s) // tag/comm evaluation point
	head := b.cur
	join := b.newBlock()
	if lt := b.labels[label]; lt != nil {
		lt.brk = join
	}
	b.breaks = append(b.breaks, join)
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.link(head, bodies[i])
	}
	for i, clause := range clauses {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if c.Comm != nil {
				bodies[i].Stmts = append(bodies[i].Stmts, c.Comm)
			} else {
				hasDefault = true
			}
			list = c.Body
		}
		b.cur = bodies[i]
		// fallthrough chains to the next body; detect it so the edge
		// lands on the case body, not the join.
		fallsThrough := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				list = list[:n-1]
			}
		}
		b.stmtList(list, "")
		if fallsThrough && i+1 < len(bodies) {
			b.link(b.cur, bodies[i+1])
		} else {
			b.link(b.cur, join)
		}
	}
	if !hasDefault {
		b.link(head, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if lt := b.labels[label]; lt != nil {
		lt.brk, lt.cont = brk, cont
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil && lt.brk != nil {
				b.link(b.cur, lt.brk)
				return
			}
		}
		if n := len(b.breaks); n > 0 {
			b.link(b.cur, b.breaks[n-1])
			return
		}
		b.link(b.cur, b.g.Exit)
	case "continue":
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil && lt.cont != nil {
				b.link(b.cur, lt.cont)
				return
			}
		}
		if n := len(b.continues); n > 0 {
			b.link(b.cur, b.continues[n-1])
			return
		}
		b.link(b.cur, b.g.Exit)
	case "goto":
		// Conservative: model goto as function exit (see package doc).
		b.link(b.cur, b.g.Exit)
	case "fallthrough":
		// Handled by switchLike; a stray fallthrough falls to exit.
		b.link(b.cur, b.g.Exit)
	}
}
