// Fixture for the flow engine unit tests: interface dispatch, mutual
// recursion, closure-parameter dispatch, float accumulators, and a
// minimal source-to-sink taint chain.
package engine

// --- interface dispatch ---

type Writer interface {
	Write(p []byte) (int, error)
}

type FileW struct{}

func (FileW) Write(p []byte) (int, error) { return len(p), nil }

type BufW struct{}

func (*BufW) Write(p []byte) (int, error) { return len(p), nil }

// UseWriter dispatches through the interface: the engine must resolve
// both implementing methods.
func UseWriter(w Writer, p []byte) {
	_, _ = w.Write(p)
}

// --- mutual recursion with a blocking leaf ---

var ch = make(chan int)

func wait() int { return <-ch }

func Ping(n int) int {
	if n <= 0 {
		return 0
	}
	return Pong(n - 1)
}

func Pong(n int) int {
	wait()
	return Ping(n - 1)
}

// --- closure-parameter dispatch ---

var saved func()

func Spawn(f func())    { go f() }
func CallSync(f func()) { f() }
func Store(f func())    { saved = f }

// SpawnVia forwards its parameter to a spawner: the spawn fact must
// propagate transitively.
func SpawnVia(f func()) { Spawn(f) }

// --- float accumulator parameter ---

func AddInto(p *float64, v float64) { *p += v }

// --- taint chain ---

func Source() int       { return 42 }
func Sink(v int)        { _ = v }
func launder(v int) int { return v }

func Direct()    { Sink(Source()) }
func Laundered() { Sink(launder(Source())) }
func Clean()     { Sink(7) }
