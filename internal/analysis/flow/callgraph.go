package flow

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file resolves call sites to callee sets and computes the call
// graph's strongly-connected components, the traversal order for
// bottom-up summaries (recursion collapses into one SCC whose
// summaries are iterated to fixpoint).

// buildCalls walks fi's body (including nested function literals — the
// engine treats a closure's statements as part of its enclosing
// function, which is how captured variables stay visible to the
// flow-insensitive taint pass) and records one CallSite per call
// expression.
func (e *Engine) buildCalls(fi *FuncInfo) {
	info := fi.Unit.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTypeConversion(info, call) || isBuiltinCall(info, call) {
			return true
		}
		fi.calls = append(fi.calls, e.resolveCall(info, call))
		return true
	})
}

// resolveCall produces the callee set for one call expression.
func (e *Engine) resolveCall(info *types.Info, call *ast.CallExpr) CallSite {
	site := CallSite{Call: call}
	switch fun := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			site.addCallee(e, origin(obj))
		default:
			site.Dynamic = true // call through a func-typed variable
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if !ok {
			// Qualified identifier: pkg.Func.
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				site.addCallee(e, origin(fn))
			} else {
				site.Dynamic = true
			}
			break
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			site.Dynamic = true // method-valued field etc.
			break
		}
		if types.IsInterface(sel.Recv()) {
			// Interface dispatch: the callee set is every method of a
			// loaded named type that implements the interface, plus the
			// interface method itself so external analyzers can match
			// source/sink identities (hash.Hash.Write and friends) even
			// when no loaded type implements the interface.
			site.Callees = e.implementers(sel.Recv(), origin(fn))
			if len(site.Callees) == 0 {
				site.Dynamic = true
			}
			site.Callees = append(site.Callees, origin(fn))
		} else {
			site.addCallee(e, origin(fn))
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its statements already belong to
		// the enclosing function's soup; no edge needed.
	default:
		site.Dynamic = true
	}
	return site
}

// addCallee appends fn if the engine knows it; otherwise the site is
// marked dynamic (external function — summary unknown).
func (s *CallSite) addCallee(e *Engine, fn *types.Func) {
	if fn == nil {
		s.Dynamic = true
		return
	}
	if _, ok := e.funcs[fn]; ok {
		s.Callees = append(s.Callees, fn)
	} else {
		s.Dynamic = true
		// Still record the external callee so analyzers can match
		// sources/sinks by package path and name.
		s.Callees = append(s.Callees, fn)
	}
}

// implementers resolves an interface method to the corresponding
// methods of every loaded named type that implements the interface.
// Results are memoized per interface method and include only methods
// with bodies in the loaded set.
func (e *Engine) implementers(recv types.Type, ifaceMethod *types.Func) []*types.Func {
	if cached, ok := e.implCache[ifaceMethod]; ok {
		return cached
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, named := range e.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		for _, t := range []types.Type{named, types.NewPointer(named)} {
			if !types.Implements(t, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(t, true, ifaceMethod.Pkg(), ifaceMethod.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			m = origin(m)
			if _, known := e.funcs[m]; known && !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
			break // pointer method set contains the value method set
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	e.implCache[ifaceMethod] = out
	return out
}

// Callees returns the known-body callees of fn, deduplicated, in
// deterministic order.
func (e *Engine) Callees(fn *types.Func) []*types.Func {
	fi := e.Info(fn)
	if fi == nil {
		return nil
	}
	seen := map[*types.Func]bool{}
	var out []*types.Func
	for _, site := range fi.calls {
		for _, c := range site.Callees {
			if _, known := e.funcs[c]; known && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Reachable returns the set of functions reachable from roots over the
// call graph (including the roots themselves).
func (e *Engine) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var stack []*types.Func
	for _, r := range roots {
		r = origin(r)
		if _, ok := e.funcs[r]; ok && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range e.Callees(fn) {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// sccs computes strongly-connected components of the call graph in
// reverse topological order (callees before callers) with Tarjan's
// algorithm, iteratively to stay stack-safe on deep graphs.
func (e *Engine) sccs() [][]*types.Func {
	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	var comps [][]*types.Func
	next := 0

	type frame struct {
		fn    *types.Func
		succs []*types.Func
		i     int
	}
	for _, root := range e.order {
		if _, visited := index[root]; visited {
			continue
		}
		work := []frame{{fn: root, succs: e.Callees(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.succs) {
				succ := f.succs[f.i]
				f.i++
				if _, visited := index[succ]; !visited {
					index[succ], low[succ] = next, next
					next++
					stack = append(stack, succ)
					onStack[succ] = true
					work = append(work, frame{fn: succ, succs: e.Callees(succ)})
				} else if onStack[succ] && index[succ] < low[f.fn] {
					low[f.fn] = index[succ]
				}
				continue
			}
			// Post-order: pop the frame, maybe emit a component.
			fn := f.fn
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].fn
				if low[fn] < low[parent] {
					low[parent] = low[fn]
				}
			}
			if low[fn] == index[fn] {
				var comp []*types.Func
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == fn {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// isTypeConversion reports whether call is a conversion like T(x).
func isTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltinCall reports whether call targets a builtin (append, len,
// panic, recover, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
