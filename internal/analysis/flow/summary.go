package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file computes the spec-independent function summaries ("facts")
// bottom-up over the call graph's SCCs:
//
//   - blocking facts: where a function directly blocks (channel ops,
//     selects without default, sleeps, sync waits, network/exec I/O)
//     plus lock-held-across-a-possibly-blocking-call facts derived
//     from the CFG;
//   - MayBlock: transitive closure of blocking over known callees;
//   - closure-parameter dispatch: which func-typed parameters a
//     function invokes, and whether concurrently (go statement,
//     escaping into longer-lived state, or handing to a callee that
//     does);
//   - float-accumulator parameters: pointer-to-float parameters the
//     function accumulates into with +=/-= or x = x + y, the
//     interprocedural extension of floatfold's order-sensitivity rule.
//
// Facts are cached per function inside the Engine (the per-package
// summary cache: every function's summary is computed exactly once per
// rcptlint invocation no matter how many analyzers consult it).

// BlockKind classifies a blocking fact.
type BlockKind string

const (
	BlockChanSend   BlockKind = "channel send"
	BlockChanRecv   BlockKind = "channel receive"
	BlockSelect     BlockKind = "select without default"
	BlockSleep      BlockKind = "time.Sleep"
	BlockSyncWait   BlockKind = "sync wait"
	BlockNetIO      BlockKind = "network I/O"
	BlockExec       BlockKind = "subprocess wait"
	BlockLockAcross BlockKind = "lock held across blocking call"
	BlockSemAcquire BlockKind = "semaphore acquire"
)

// BlockFact is one direct blocking operation inside a function body.
type BlockFact struct {
	Kind BlockKind
	Pos  token.Pos
	Desc string // human fragment, e.g. "send on jobs"
}

// Summary is the engine's spec-independent fact set for one function.
type Summary struct {
	Fn     *types.Func
	Params []*types.Var // receiver first when the function is a method

	// Blocking facts of this body alone; MayBlock includes callees.
	Blocks   []BlockFact
	MayBlock bool
	HasCtx   bool

	// SpawnsParams / CallsParams are bitmasks over Params (bit i =
	// param i): func-typed parameters this function hands to a
	// goroutine / stores beyond the call (Spawns) or invokes
	// synchronously (Calls), transitively through known callees.
	SpawnsParams uint64
	CallsParams  uint64

	// FloatAccumParams marks pointer-to-float parameters that receive
	// order-sensitive accumulation (*p += x and spellings).
	FloatAccumParams uint64
}

// Summary returns fn's fact summary, computing the whole package set's
// summaries bottom-up on first use.
func (e *Engine) Summary(fn *types.Func) *Summary {
	e.summarizeAll()
	if fi := e.Info(fn); fi != nil {
		return fi.summary
	}
	return nil
}

// MayBlock reports whether fn can block, transitively.
func (e *Engine) MayBlock(fn *types.Func) bool {
	if s := e.Summary(fn); s != nil {
		return s.MayBlock
	}
	// External function: known blocking identities only.
	_, blocking := externalBlockFact(fn)
	return blocking
}

func (e *Engine) summarizeAll() {
	if e.summarized {
		return
	}
	e.summarized = true
	comps := e.sccs() // reverse topological: callees first
	for _, comp := range comps {
		// Seed summaries so intra-SCC lookups resolve during fixpoint.
		for _, fn := range comp {
			fi := e.funcs[fn]
			fi.summary = &Summary{
				Fn:     fn,
				Params: paramVars(fn),
				HasCtx: HasContextParam(fn.Type().(*types.Signature)),
			}
		}
		// Iterate to fixpoint; the lattice is finite bitmasks plus one
		// boolean, so this terminates quickly (usually one round, two
		// for recursive components).
		for changed := true; changed; {
			changed = false
			for _, fn := range comp {
				if e.summarizeOne(e.funcs[fn]) {
					changed = true
				}
			}
		}
	}
	// Second phase, after MayBlock converged: lock-held-across-
	// blocking-call facts need callee MayBlock, and may themselves make
	// a function blocking, so propagate once more to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fn := range e.order {
			fi := e.funcs[fn]
			if e.lockFacts(fi) {
				changed = true
			}
			if !fi.summary.MayBlock && e.calleesMayBlock(fi) {
				fi.summary.MayBlock = true
				changed = true
			}
		}
	}
}

// summarizeOne recomputes fi's summary; reports whether it grew.
func (e *Engine) summarizeOne(fi *FuncInfo) bool {
	s := fi.summary
	grew := false

	if len(s.Blocks) == 0 {
		facts := e.directBlockFacts(fi)
		if len(facts) > 0 {
			s.Blocks = facts
			grew = true
		}
	}
	if !s.MayBlock && (len(s.Blocks) > 0 || e.calleesMayBlock(fi)) {
		s.MayBlock = true
		grew = true
	}

	spawns, calls := e.paramDispatch(fi)
	if spawns&^s.SpawnsParams != 0 {
		s.SpawnsParams |= spawns
		grew = true
	}
	if calls&^s.CallsParams != 0 {
		s.CallsParams |= calls
		grew = true
	}

	fa := e.floatAccumParams(fi)
	if fa&^s.FloatAccumParams != 0 {
		s.FloatAccumParams |= fa
		grew = true
	}
	return grew
}

func (e *Engine) calleesMayBlock(fi *FuncInfo) bool {
	for _, site := range fi.calls {
		// A blocking callee only blocks the *caller* when invoked
		// synchronously: `go f()` moves the wait to another goroutine.
		if inGoStmt(fi.Decl.Body, site.Call.Pos()) {
			continue
		}
		for _, c := range site.Callees {
			if known := e.funcs[c]; known != nil {
				if known.summary != nil && known.summary.MayBlock {
					return true
				}
				continue
			}
			if _, ok := externalBlockFact(c); ok {
				return true
			}
		}
	}
	return false
}

// directBlockFacts scans fi's body for operations that block the
// calling goroutine, excluding operations inside `go` statements
// (those block a different goroutine) and non-blocking select arms.
func (e *Engine) directBlockFacts(fi *FuncInfo) []BlockFact {
	var facts []BlockFact
	info := fi.Unit.Info
	body := fi.Decl.Body

	// Positions of select statements WITH a default clause: channel
	// operations appearing as their comm clauses are non-blocking.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			facts = append(facts, BlockFact{Kind: BlockSelect, Pos: sel.Pos(), Desc: "select with no default"})
		}
		// The comm clauses' channel ops are covered either by the
		// default clause (non-blocking poll) or by the select fact
		// itself; counting them separately would double-report.
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				nonBlocking[cc.Comm] = true
				// The comm statement wraps the channel op; exempt
				// the op expression too.
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.SendStmt, *ast.UnaryExpr:
						nonBlocking[m] = true
					}
					return true
				})
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if nonBlocking[n] {
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // blocks another goroutine, not this one
		case *ast.SendStmt:
			facts = append(facts, BlockFact{Kind: BlockChanSend, Pos: n.Pos(), Desc: "send on " + types.ExprString(n.Chan)})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				facts = append(facts, BlockFact{Kind: BlockChanRecv, Pos: n.Pos(), Desc: "receive from " + types.ExprString(n.X)})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					facts = append(facts, BlockFact{Kind: BlockChanRecv, Pos: n.Pos(), Desc: "range over channel " + types.ExprString(n.X)})
				}
			}
		case *ast.CallExpr:
			if fn := FuncOf(info, n); fn != nil {
				if fact, ok := externalBlockFact(fn); ok {
					fact.Pos = n.Pos()
					facts = append(facts, fact)
				}
			}
		}
		return true
	})
	sort.Slice(facts, func(i, j int) bool { return posLess(e.Fset, facts[i].Pos, facts[j].Pos) })
	return facts
}

// externalBlockFact classifies calls to functions outside the loaded
// set that block by contract.
func externalBlockFact(fn *types.Func) (BlockFact, bool) {
	path, name := PathAndName(fn)
	recv := recvTypeName(fn)
	switch {
	case path == "time" && name == "Sleep":
		return BlockFact{Kind: BlockSleep, Desc: "time.Sleep"}, true
	case path == "sync" && recv == "WaitGroup" && name == "Wait":
		return BlockFact{Kind: BlockSyncWait, Desc: "sync.WaitGroup.Wait"}, true
	case path == "sync" && recv == "Cond" && name == "Wait":
		return BlockFact{Kind: BlockSyncWait, Desc: "sync.Cond.Wait"}, true
	case path == "net" && (name == "Dial" || name == "DialTimeout" || name == "Listen"):
		return BlockFact{Kind: BlockNetIO, Desc: "net." + name}, true
	case path == "net/http" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return BlockFact{Kind: BlockNetIO, Desc: "http." + name}, true
	case path == "net/http" && recv == "Client" &&
		(name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return BlockFact{Kind: BlockNetIO, Desc: "http.Client." + name}, true
	case path == "os/exec" && recv == "Cmd" &&
		(name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return BlockFact{Kind: BlockExec, Desc: "exec.Cmd." + name}, true
	}
	return BlockFact{}, false
}

// recvTypeName returns the bare receiver type name of a method ("Cmd"
// for (*exec.Cmd).Run), or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// lockFacts derives lock-held-across-blocking-call facts for fi using
// its CFG: a sync.Mutex/RWMutex Lock whose critical section (to the
// matching Unlock, or function exit when the Unlock is deferred)
// contains a call that may block. Appends new facts; reports growth.
func (e *Engine) lockFacts(fi *FuncInfo) bool {
	s := fi.summary
	for _, f := range s.Blocks {
		if f.Kind == BlockLockAcross {
			return false // already derived; facts are deterministic
		}
	}
	info := fi.Unit.Info
	g := e.CFG(fi)
	var facts []BlockFact
	for _, blk := range g.Blocks {
		for si, stmt := range blk.Stmts {
			lockRecv, isRLock := lockCall(info, stmt)
			if lockRecv == "" {
				continue
			}
			unlockName := "Unlock"
			if isRLock {
				unlockName = "RUnlock"
			}
			// Deferred unlock directly after the Lock means the lock is
			// held until function exit: every forward statement is in
			// the critical section.
			deferred := false
			if si+1 < len(blk.Stmts) {
				if d, ok := blk.Stmts[si+1].(*ast.DeferStmt); ok {
					if r, _ := lockCallExpr(info, d.Call); r == lockRecv {
						deferred = true
					}
				}
			}
			if pos, desc, found := e.blockingCallInCritical(fi, blk, si+1, lockRecv, unlockName, deferred); found {
				facts = append(facts, BlockFact{
					Kind: BlockLockAcross, Pos: pos,
					Desc: "lock " + lockRecv + " held across " + desc,
				})
			}
		}
	}
	if len(facts) == 0 {
		return false
	}
	s.Blocks = append(s.Blocks, facts...)
	sort.Slice(s.Blocks, func(i, j int) bool { return posLess(e.Fset, s.Blocks[i].Pos, s.Blocks[j].Pos) })
	s.MayBlock = true
	return true
}

// blockingCallInCritical walks the CFG forward from (start block,
// statement index) until the matching unlock, looking for a call that
// may block.
func (e *Engine) blockingCallInCritical(fi *FuncInfo, start *Block, si int, lockRecv, unlockName string, deferred bool) (token.Pos, string, bool) {
	info := fi.Unit.Info
	type item struct {
		blk *Block
		si  int
	}
	seen := map[*Block]bool{}
	queue := []item{{start, si}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		unlocked := false
		for i := it.si; i < len(it.blk.Stmts); i++ {
			stmt := it.blk.Stmts[i]
			if !deferred {
				if r, name := unlockOf(info, stmt); r == lockRecv && name == unlockName {
					unlocked = true
					break
				}
			}
			if pos, desc, found := e.mayBlockCallIn(fi, stmt); found {
				return pos, desc, true
			}
		}
		if unlocked {
			continue
		}
		for _, succ := range it.blk.Succs {
			if !seen[succ] {
				seen[succ] = true
				queue = append(queue, item{succ, 0})
			}
		}
	}
	return token.NoPos, "", false
}

// mayBlockCallIn reports the first call in stmt (not descending into
// nested function literals or go statements) that may block.
func (e *Engine) mayBlockCallIn(fi *FuncInfo, stmt ast.Stmt) (token.Pos, string, bool) {
	info := fi.Unit.Info
	var pos token.Pos
	var desc string
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			pos, desc, found = n.Pos(), "a channel send", true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, desc, found = n.Pos(), "a channel receive", true
				return false
			}
		case *ast.CallExpr:
			fn := FuncOf(info, n)
			if fn == nil {
				return true
			}
			if e.MayBlock(fn) {
				pos, desc, found = n.Pos(), "call to "+fn.Name(), true
				return false
			}
		}
		return true
	})
	return pos, desc, found
}

// lockCall matches `x.Lock()` / `x.RLock()` expression statements on a
// sync mutex, returning the receiver's expression string.
func lockCall(info *types.Info, stmt ast.Stmt) (recv string, rlock bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	recv, name := lockCallExpr(info, call)
	if recv == "" || (name != "Lock" && name != "RLock") {
		return "", false
	}
	return recv, name == "RLock"
}

// unlockOf matches `x.Unlock()` / `x.RUnlock()` expression statements.
func unlockOf(info *types.Info, stmt ast.Stmt) (recv, name string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	return lockCallExpr(info, call)
}

// lockCallExpr matches a call to a sync.Mutex/RWMutex method, returning
// the receiver expression string and method name.
func lockCallExpr(info *types.Info, call *ast.CallExpr) (recv, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	r := recvTypeName(fn)
	if r != "Mutex" && r != "RWMutex" {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

// SpawnsArg reports whether this call site hands its ai'th argument to
// a goroutine — directly (the call is a `go` statement target handled
// by callers) or because a resolved callee's summary spawns, stores, or
// forwards the corresponding parameter. External callees answer false
// (sort.Slice and friends invoke their callbacks inline; a documented
// soundness limit).
func (e *Engine) SpawnsArg(info *types.Info, call *ast.CallExpr, ai int) bool {
	e.summarizeAll()
	site := e.resolveCall(info, call)
	sp, _ := e.argDispatch(site, call, ai)
	return sp
}

// FloatAccumArg reports whether the call site's ai'th argument feeds a
// callee parameter marked as an order-sensitive float accumulator
// (*p += x inside the callee, transitively).
func (e *Engine) FloatAccumArg(info *types.Info, call *ast.CallExpr, ai int) bool {
	e.summarizeAll()
	site := e.resolveCall(info, call)
	for _, c := range site.Callees {
		known := e.funcs[c]
		if known == nil || known.summary == nil {
			continue
		}
		pi := calleeParamIndex(c, call, ai)
		if pi >= 0 && pi < 64 && known.summary.FloatAccumParams&(1<<uint(pi)) != 0 {
			return true
		}
	}
	return false
}

// paramDispatch computes the spawn/call bitmasks for fi's func-typed
// parameters.
func (e *Engine) paramDispatch(fi *FuncInfo) (spawns, calls uint64) {
	info := fi.Unit.Info
	body := fi.Decl.Body
	params := fi.summary.Params
	paramBit := map[*types.Var]uint64{}
	for i, p := range params {
		if i >= 60 {
			break
		}
		if _, ok := p.Type().Underlying().(*types.Signature); ok {
			paramBit[p] = 1 << uint(i)
		}
	}
	if len(paramBit) == 0 {
		return 0, 0
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Direct invocation p(...).
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					if bit, isParam := paramBit[v]; isParam {
						if inGoStmt(body, n.Pos()) {
							spawns |= bit
						} else {
							calls |= bit
						}
					}
				}
			}
			// p passed as an argument: inherit the callee's dispatch.
			site := e.resolveCall(info, n)
			for ai, arg := range n.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				bit, isParam := paramBit[v]
				if !isParam {
					continue
				}
				sp, ca := e.argDispatch(site, n, ai)
				if sp {
					spawns |= bit
				}
				if ca {
					calls |= bit
				}
			}
		case *ast.AssignStmt:
			// Storing a func param into anything makes its invocation
			// site invisible; treat as potentially concurrent.
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						if bit, isParam := paramBit[v]; isParam {
							spawns |= bit
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				expr := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					expr = kv.Value
				}
				if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						if bit, isParam := paramBit[v]; isParam {
							spawns |= bit
						}
					}
				}
			}
		case *ast.SendStmt:
			// Sending a func param down a channel hands it to whatever
			// goroutine drains the channel (worker-pool shape).
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					if bit, isParam := paramBit[v]; isParam {
						spawns |= bit
					}
				}
			}
		case *ast.ReturnStmt:
			// Returning a func param lets the caller invoke it anywhere.
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						if bit, isParam := paramBit[v]; isParam {
							spawns |= bit
						}
					}
				}
			}
		case *ast.GoStmt:
			// go p(...) handled above via inGoStmt; still descend so
			// nested arg passing is seen.
		}
		return true
	})
	return spawns, calls
}

// argDispatch reports how a call site treats its ai'th argument when it
// is func-typed: spawned concurrently or called synchronously,
// according to the callee's summary. External callees default to
// synchronous (sort.Slice, filepath.WalkDir, ... invoke their callback
// inline) — a documented soundness limit that keeps FP pressure off
// splitshare.
func (e *Engine) argDispatch(site CallSite, call *ast.CallExpr, ai int) (spawned, called bool) {
	for _, c := range site.Callees {
		known := e.funcs[c]
		if known == nil || known.summary == nil {
			called = true
			continue
		}
		pi := calleeParamIndex(c, call, ai)
		if pi < 0 || pi >= 64 {
			continue
		}
		if known.summary.SpawnsParams&(1<<uint(pi)) != 0 {
			spawned = true
		}
		if known.summary.CallsParams&(1<<uint(pi)) != 0 {
			called = true
		}
	}
	if site.Dynamic && len(site.Callees) == 0 {
		called = true
	}
	return spawned, called
}

// calleeParamIndex maps argument index ai of call to the callee's
// parameter index in its summary (receiver occupies slot 0 for
// methods; variadic tail collapses onto the last parameter).
func calleeParamIndex(callee *types.Func, call *ast.CallExpr, ai int) int {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return -1
	}
	shift := 0
	if sig.Recv() != nil {
		// Method expression form T.M(recv, args...) passes the
		// receiver as arg 0; ordinary method calls do not.
		if !isMethodExprCall(call, sig) {
			shift = 1
		}
	}
	idx := ai + shift
	last := sig.Params().Len() - 1 + shift
	if sig.Variadic() && idx > last {
		idx = last
	}
	if idx >= sig.Params().Len()+shift {
		return -1
	}
	return idx
}

// isMethodExprCall detects the rare T.M(recv, ...) method-expression
// call shape, where the receiver travels as the first argument.
func isMethodExprCall(call *ast.CallExpr, sig *types.Signature) bool {
	if sig.Recv() == nil {
		return false
	}
	return len(call.Args) == sig.Params().Len()+1
}

// floatAccumParams marks pointer-to-float parameters accumulated into
// order-sensitively: *p += x, *p -= x, *p = *p + x.
func (e *Engine) floatAccumParams(fi *FuncInfo) uint64 {
	info := fi.Unit.Info
	params := fi.summary.Params
	paramBit := map[*types.Var]uint64{}
	for i, p := range params {
		if i >= 60 {
			break
		}
		if ptr, ok := p.Type().Underlying().(*types.Pointer); ok {
			if b, ok := ptr.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				paramBit[p] = 1 << uint(i)
			}
		}
	}
	if len(paramBit) == 0 {
		return 0
	}
	var mask uint64
	deref := func(expr ast.Expr) *types.Var {
		star, ok := ast.Unparen(expr).(*ast.StarExpr)
		if !ok {
			return nil
		}
		id, ok := ast.Unparen(star.X).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		v := deref(as.Lhs[0])
		if v == nil {
			return true
		}
		bit, isParam := paramBit[v]
		if !isParam {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			mask |= bit
		case token.ASSIGN:
			// *p = *p + x spelling.
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if deref(bin.X) == v || deref(bin.Y) == v {
						mask |= bit
					}
				}
			}
		}
		return true
	})
	return mask
}

// paramVars lists a function's parameters with the receiver first.
func paramVars(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// inGoStmt reports whether pos lies inside a `go` statement's subtree
// within body.
func inGoStmt(body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		if inside {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if g.Pos() <= pos && pos < g.End() {
			inside = true
			return false
		}
		return true
	})
	return inside
}
