// Package flow is the interprocedural dataflow engine under rcptlint's
// call-graph-aware analyzers (nondetflow, ctxprop, shardpure, and the
// summary-driven rewrites of floatfold and splitshare). It is std-lib
// only — go/ast + go/types over packages loaded by the module-aware
// loader in internal/analysis — and computes three artifacts:
//
//   - per-function control-flow graphs (cfg.go), used where statement
//     order matters (locks held across calls);
//   - a static call graph (callgraph.go) with direct calls resolved
//     through go/types and interface dispatch resolved by
//     implementing-type sets over every loaded package;
//   - bottom-up function summaries (summary.go) over the call graph's
//     strongly-connected components: taint transfer (which
//     parameters/results carry nondeterminism), blocking behaviour
//     (channel ops, locks held across calls, sleeps, network I/O), and
//     closure-parameter dispatch (which func-typed parameters a callee
//     invokes, and whether concurrently).
//
// Summaries are cached per package inside the Engine, so the engine is
// built once per rcptlint invocation and shared by every analyzer in
// the suite; re-running an analyzer never recomputes a summary. The
// lattice is a finite bitmask per value (parameter bits plus a source
// bit and a map-order bit), so every fixpoint terminates.
//
// Soundness limits (documented, deliberate): calls through func-typed
// variables that the engine cannot resolve propagate the union of
// their argument taints to their results but contribute no call edge;
// goto is modelled as an edge to function exit; reflection and unsafe
// are not modelled. These make the engine under-approximate
// reachability and over-approximate taint, which is the right polarity
// for a lint gate: missed edges can hide a violation but never invent
// one.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PackageUnit is one loaded, type-checked package handed to Build. It
// mirrors the loader's view without importing it, keeping the
// dependency direction analysis -> flow.
type PackageUnit struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// FuncInfo is everything the engine knows about one function with a
// body in the loaded set.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Unit *PackageUnit

	cfg     *CFG       // built lazily by Engine.CFG
	calls   []CallSite // populated by buildCallGraph
	summary *Summary   // populated by Engine.summarize
}

// CallSite is one call expression inside a function, with the callee
// set the engine resolved for it.
type CallSite struct {
	Call *ast.CallExpr
	// Callees holds every resolved target with a body in the loaded
	// set: one entry for a direct call, the implementing-type set for
	// an interface dispatch.
	Callees []*types.Func
	// Dynamic marks a call through a func value (or an external
	// function) the engine has no body for.
	Dynamic bool
}

// Engine is the shared dataflow state for one loaded package set.
type Engine struct {
	Fset  *token.FileSet
	Units []PackageUnit

	funcs map[*types.Func]*FuncInfo
	// order lists every known function in deterministic (position)
	// order, so analyzer output never depends on map iteration.
	order []*types.Func
	// implCache memoizes interface-method -> implementing concrete
	// methods resolution.
	implCache map[*types.Func][]*types.Func
	// namedTypes is every named type declared in the loaded packages,
	// the candidate set for interface dispatch.
	namedTypes []*types.Named

	summarized bool
	// taints memoizes taint analyses by spec name (the per-package
	// summary cache for the taint pass).
	taints map[string]*taintState
}

// Build indexes the package set and constructs the call graph. It does
// not compute summaries; those are built on first use and cached.
func Build(fset *token.FileSet, units []PackageUnit) *Engine {
	e := &Engine{
		Fset:      fset,
		Units:     units,
		funcs:     map[*types.Func]*FuncInfo{},
		implCache: map[*types.Func][]*types.Func{},
	}
	for i := range units {
		u := &units[i]
		if u.Pkg == nil || u.Info == nil {
			continue
		}
		e.collectNamedTypes(u)
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				e.funcs[origin(obj)] = &FuncInfo{Obj: origin(obj), Decl: fd, Unit: u}
			}
		}
	}
	for fn := range e.funcs {
		e.order = append(e.order, fn)
	}
	sort.Slice(e.order, func(i, j int) bool { return e.order[i].Pos() < e.order[j].Pos() })
	for _, fn := range e.order {
		e.buildCalls(e.funcs[fn])
	}
	return e
}

// Funcs returns every function with a body, in deterministic order.
func (e *Engine) Funcs() []*types.Func { return e.order }

// Info returns the engine's record for fn (Origin-normalized), or nil.
func (e *Engine) Info(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return e.funcs[origin(fn)]
}

// Calls returns the resolved call sites inside fn, or nil.
func (e *Engine) Calls(fn *types.Func) []CallSite {
	if fi := e.Info(fn); fi != nil {
		return fi.calls
	}
	return nil
}

// origin normalizes a possibly-instantiated generic function or method
// to its declared origin, the key the engine indexes by.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// collectNamedTypes gathers the package's named types (the interface
// dispatch candidate set).
func (e *Engine) collectNamedTypes(u *PackageUnit) {
	scope := u.Pkg.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			e.namedTypes = append(e.namedTypes, named)
		}
	}
}

// unwrapFun strips parens and explicit generic instantiation
// (F[T](...), pkg.F[T](...)) down to the identifier or selector being
// called.
func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return x
		}
	}
}

// FuncOf resolves the *types.Func a call expression targets directly
// (identifier or selector, including explicit generic instantiations),
// or nil for dynamic calls. Used by analyzers that need the syntactic
// callee without full call-site resolution.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return origin(fn)
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

// PathAndName returns the defining package path and name of fn
// ("repro/internal/table", "ShardFold"); methods render the receiver
// ("(*Server).Warm" -> name "Warm", recv "*Server" is left to callers
// via types).
func PathAndName(fn *types.Func) (string, string) {
	if fn == nil {
		return "", ""
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	return path, fn.Name()
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// HasContextParam reports whether the signature takes a
// context.Context anywhere in its parameter list.
func HasContextParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if IsContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// posLess orders token positions for deterministic output.
func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
