package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural taint pass. A TaintSpec names the
// sources (calls that mint nondeterminism) and sinks (calls whose
// arguments become artifact bytes); the engine computes, bottom-up
// over call-graph SCCs, a per-function transfer summary — which
// parameters flow to which results, which parameters reach a sink
// inside the callee, which results are source-tainted outright — and
// then reports every flow at the frame where a source-rooted value
// enters a sink (directly, or through a callee whose summary says the
// argument keeps flowing down to one).
//
// The taint lattice is a bitmask per value: bit i (< 60) means "may
// depend on parameter i" (receiver is parameter 0 of a method), bit 62
// means "derived from a nondeterminism source", bit 61 means "carries
// map-iteration order" (seeded on the loop variables of a range over a
// map, reported only when the sink call sits inside that loop — an
// escaping order-sensitive accumulator is maporder's finding, not
// ours). Masks only grow, so the per-function fixpoint terminates.
//
// Propagation inside a function is flow-insensitive over the whole
// body including nested function literals (a closure's statements see
// the same environment as its enclosing function, which is exactly how
// captured variables behave). Assigning through a field, index, or
// pointer taints the root variable — coarse, but the right polarity:
// a config struct carrying one time.Now() field is tainted wholesale,
// which is precisely the Config.Fingerprint case the analyzer exists
// to catch. Calls the engine cannot resolve propagate the union of
// their argument taints to their results (fmt.Sprintf launders
// nothing) but never report.

const (
	sourceBit = uint64(1) << 62
	orderBit  = uint64(1) << 61
	paramBits = uint64(1)<<60 - 1
)

// TaintSpec declares sources and sinks for one taint analysis.
type TaintSpec struct {
	// Name keys the engine's memoization; two specs with the same name
	// are assumed identical.
	Name string
	// IsSource classifies a resolved callee (in the context of one call
	// expression — needed for call-shape sources like fmt.Sprintf with a
	// %p verb) as a nondeterminism source, returning a human description
	// ("time.Now").
	IsSource func(fn *types.Func, call *ast.CallExpr) (string, bool)
	// SinkArgs classifies a call to fn as an artifact-byte sink,
	// returning a description and the argument expressions whose taint
	// is reportable (sensitive arguments). A nil slice with ok=true
	// means every ordinary argument is sensitive.
	SinkArgs func(fn *types.Func, call *ast.CallExpr, info *types.Info) (string, []ast.Expr, bool)
	// Sanitizes returns a bitmask of fn's parameters (receiver = bit 0
	// for methods) whose taint is contractually guaranteed not to leak
	// into fn's results — e.g. the shard/worker counts of order-free
	// aggregation helpers, whose output is shard-count-independent by
	// contract (a contract enforced elsewhere: shardpure plus the
	// shard-count equivalence tests). Nil means nothing is sanitized.
	Sanitizes func(fn *types.Func) uint64
}

// Flow is one reported source-to-sink flow.
type Flow struct {
	Fn       *types.Func // function whose body contains the sink call
	Pos      token.Pos   // position of the tainted argument
	SinkDesc string      // e.g. "table.Writer.Float64" or "sink inside core.writeRow"
	Source   Witness
}

// Witness records where taint was minted.
type Witness struct {
	Pos  token.Pos
	Desc string // "time.Now", "map iteration order", ...
}

// TaintSummary is the per-function transfer function for one spec.
type TaintSummary struct {
	// ResultTaint[r] is the taint mask of result r: parameter bits map
	// caller arguments through, sourceBit means tainted regardless.
	ResultTaint []uint64
	// ResultWitness[r] backs sourceBit in ResultTaint[r].
	ResultWitness []*Witness
	// SinkParams marks parameters that reach a sink inside this
	// function (transitively); SinkDesc describes it per parameter.
	SinkParams uint64
	SinkDesc   map[int]string
}

type taintState struct {
	spec      *TaintSpec
	summaries map[*types.Func]*TaintSummary
	flows     []Flow
}

// Taint runs the spec over the whole loaded set (memoized by
// spec.Name) and returns every source-to-sink flow, ordered by
// position.
func (e *Engine) Taint(spec *TaintSpec) []Flow {
	if e.taints == nil {
		e.taints = map[string]*taintState{}
	}
	if st, ok := e.taints[spec.Name]; ok {
		return st.flows
	}
	st := &taintState{spec: spec, summaries: map[*types.Func]*TaintSummary{}}
	e.taints[spec.Name] = st

	// Phase 1: transfer summaries, bottom-up, fixpoint per SCC.
	for _, comp := range e.sccs() {
		for _, fn := range comp {
			st.summaries[fn] = newTaintSummary(fn)
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range comp {
				if e.taintOne(st, e.funcs[fn], nil) {
					changed = true
				}
			}
		}
	}
	// Phase 2: with all summaries final, collect flows per function.
	for _, fn := range e.order {
		e.taintOne(st, e.funcs[fn], &st.flows)
	}
	sort.Slice(st.flows, func(i, j int) bool { return posLess(e.Fset, st.flows[i].Pos, st.flows[j].Pos) })
	return st.flows
}

// TaintSummaryOf exposes a function's transfer summary for a spec that
// has already run (testing and diagnostics).
func (e *Engine) TaintSummaryOf(spec *TaintSpec, fn *types.Func) *TaintSummary {
	if st, ok := e.taints[spec.Name]; ok {
		return st.summaries[origin(fn)]
	}
	return nil
}

func newTaintSummary(fn *types.Func) *TaintSummary {
	sig, _ := fn.Type().(*types.Signature)
	n := 0
	if sig != nil {
		n = sig.Results().Len()
	}
	return &TaintSummary{
		ResultTaint:   make([]uint64, n),
		ResultWitness: make([]*Witness, n),
		SinkDesc:      map[int]string{},
	}
}

// taintVal is one lattice element with a source witness.
type taintVal struct {
	mask uint64
	src  *Witness
}

func (v taintVal) union(o taintVal) taintVal {
	out := taintVal{mask: v.mask | o.mask, src: v.src}
	if out.src == nil {
		out.src = o.src
	}
	return out
}

// propagation carries one function's flow-insensitive environment.
type propagation struct {
	e       *Engine
	st      *taintState
	fi      *FuncInfo
	info    *types.Info
	env     map[*types.Var]taintVal
	namedRv []*types.Var // named result variables, by result index
	// mapRanges holds [pos,end) of every range-over-map statement, for
	// the orderBit in-loop sink condition.
	mapRanges [][2]token.Pos
	changed   bool
}

// taintOne runs the propagation for fi. When flows is nil it only
// updates the function's transfer summary (returning whether it grew);
// otherwise it appends this function's reportable flows.
func (e *Engine) taintOne(st *taintState, fi *FuncInfo, flows *[]Flow) bool {
	p := &propagation{e: e, st: st, fi: fi, info: fi.Unit.Info, env: map[*types.Var]taintVal{}}
	sum := st.summaries[fi.Obj]

	// Seed parameters with their bits (receiver is bit 0).
	params := paramVars(fi.Obj)
	for i, v := range params {
		if i >= 60 {
			break
		}
		p.set(v, taintVal{mask: 1 << uint(i)})
	}
	// Named results participate as ordinary variables.
	if fi.Decl.Type.Results != nil {
		sig := fi.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			rv := sig.Results().At(i)
			if rv.Name() != "" {
				p.namedRv = append(p.namedRv, rv)
			} else {
				p.namedRv = append(p.namedRv, nil)
			}
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := p.info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.mapRanges = append(p.mapRanges, [2]token.Pos{rs.Pos(), rs.End()})
				}
			}
		}
		return true
	})

	// Fixpoint over the statement soup.
	for p.changed = true; p.changed; {
		p.changed = false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			p.stmt(n)
			return true
		})
	}

	grew := false
	// Extract result taints from return statements and named results.
	resultMasks := make([]uint64, len(sum.ResultTaint))
	resultWits := make([]*Witness, len(sum.ResultTaint))
	record := func(i int, v taintVal) {
		if i < 0 || i >= len(resultMasks) {
			return
		}
		resultMasks[i] |= v.mask
		if resultWits[i] == nil {
			resultWits[i] = v.src
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 1 && len(resultMasks) > 1 {
			// return f() forwarding multiple results.
			if call, ok := ret.Results[0].(*ast.CallExpr); ok {
				vals := p.callResults(call)
				for i, v := range vals {
					record(i, v)
				}
				return true
			}
		}
		for i, expr := range ret.Results {
			record(i, p.eval(expr))
		}
		return true
	})
	for i, rv := range p.namedRv {
		if rv != nil {
			record(i, p.env[rv])
		}
	}
	var sanitized uint64
	if st.spec.Sanitizes != nil {
		sanitized = st.spec.Sanitizes(fi.Obj)
	}
	for i := range resultMasks {
		m := resultMasks[i] &^ orderBit &^ sanitized // order taint stays local
		if m&^sum.ResultTaint[i] != 0 {
			sum.ResultTaint[i] |= m
			grew = true
		}
		if sum.ResultWitness[i] == nil && resultWits[i] != nil {
			sum.ResultWitness[i] = resultWits[i]
			grew = true
		}
	}

	// Sink pass: direct sinks and callee SinkParams.
	if p.sinkPass(sum, flows) {
		grew = true
	}
	return grew
}

func (p *propagation) set(v *types.Var, val taintVal) {
	cur := p.env[v]
	merged := cur.union(val)
	if merged.mask != cur.mask || (cur.src == nil && merged.src != nil) {
		p.env[v] = merged
		p.changed = true
	}
}

// stmt transfers taint for one statement node during the fixpoint.
func (p *propagation) stmt(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
			// x, y := f()  /  v, ok := m[k]  /  v, ok := <-ch
			vals := p.multiValue(n.Rhs[0], len(n.Lhs))
			for i, lhs := range n.Lhs {
				p.assign(lhs, vals[i])
			}
			return
		}
		for i, lhs := range n.Lhs {
			if i < len(n.Rhs) {
				val := p.eval(n.Rhs[i])
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					// Compound assignment keeps the old taint too.
					val = val.union(p.eval(lhs))
				}
				p.assign(lhs, val)
			}
		}
	case *ast.ValueSpec:
		if len(n.Names) > 1 && len(n.Values) == 1 {
			if call, ok := n.Values[0].(*ast.CallExpr); ok {
				vals := p.callResults(call)
				for i, name := range n.Names {
					if i < len(vals) {
						p.defineIdent(name, vals[i])
					}
				}
				return
			}
		}
		for i, name := range n.Names {
			if i < len(n.Values) {
				p.defineIdent(name, p.eval(n.Values[i]))
			}
		}
	case *ast.RangeStmt:
		val := p.eval(n.X)
		if t := p.info.TypeOf(n.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				val = val.union(taintVal{mask: orderBit, src: &Witness{Pos: n.Pos(), Desc: "map iteration order"}})
			}
		}
		if n.Key != nil {
			p.assign(n.Key, val)
		}
		if n.Value != nil {
			p.assign(n.Value, val)
		}
	case *ast.SendStmt:
		// The channel variable is a container for whatever was sent.
		if root := p.rootVar(n.Chan); root != nil {
			p.set(root, p.eval(n.Value))
		}
	}
}

// assign taints the root variable of an lvalue.
func (p *propagation) assign(lhs ast.Expr, val taintVal) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if v, ok := p.info.Defs[id].(*types.Var); ok {
			p.set(v, val)
			return
		}
		if v, ok := p.info.Uses[id].(*types.Var); ok {
			p.set(v, val)
			return
		}
		return
	}
	// Field, index, or pointer target: taint the root variable.
	if root := p.rootVar(lhs); root != nil {
		p.set(root, val)
	}
}

func (p *propagation) defineIdent(id *ast.Ident, val taintVal) {
	if v, ok := p.info.Defs[id].(*types.Var); ok {
		p.set(v, val)
	}
}

// rootVar walks selectors/indexes/stars/parens to the base variable.
func (p *propagation) rootVar(expr ast.Expr) *types.Var {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.Ident:
			if v, ok := p.info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := p.info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// eval computes an expression's taint.
func (p *propagation) eval(expr ast.Expr) taintVal {
	switch x := expr.(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		if v, ok := p.info.Uses[x].(*types.Var); ok {
			return p.env[v]
		}
		return taintVal{}
	case *ast.ParenExpr:
		return p.eval(x.X)
	case *ast.SelectorExpr:
		// Field read off a tainted value, or qualified identifier.
		if _, isPkg := p.info.Uses[selRootIdent(x)].(*types.PkgName); isPkg && selRootIdent(x) != nil {
			return taintVal{}
		}
		return p.eval(x.X)
	case *ast.StarExpr:
		return p.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW { // <-ch yields what the channel holds
			return p.eval(x.X)
		}
		return p.eval(x.X)
	case *ast.BinaryExpr:
		return p.eval(x.X).union(p.eval(x.Y))
	case *ast.IndexExpr:
		return p.eval(x.X).union(p.eval(x.Index))
	case *ast.IndexListExpr:
		return p.eval(x.X)
	case *ast.SliceExpr:
		return p.eval(x.X)
	case *ast.TypeAssertExpr:
		return p.eval(x.X)
	case *ast.CompositeLit:
		var out taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = out.union(p.eval(el))
		}
		return out
	case *ast.CallExpr:
		vals := p.callResults(x)
		var out taintVal
		for _, v := range vals {
			out = out.union(v)
		}
		return out
	case *ast.FuncLit:
		return taintVal{} // the closure value itself carries no taint
	default:
		return taintVal{}
	}
}

// multiValue evaluates the rhs of a 1-to-n assignment.
func (p *propagation) multiValue(rhs ast.Expr, n int) []taintVal {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		vals := p.callResults(call)
		for len(vals) < n {
			vals = append(vals, taintVal{})
		}
		return vals
	}
	// v, ok := m[k]  /  v, ok := <-ch  /  v, ok := x.(T)
	out := make([]taintVal, n)
	out[0] = p.eval(rhs)
	return out
}

// callResults computes the taint of each result of a call.
func (p *propagation) callResults(call *ast.CallExpr) []taintVal {
	info := p.info
	// Type conversion: taint passes through.
	if isTypeConversion(info, call) {
		if len(call.Args) == 1 {
			return []taintVal{p.eval(call.Args[0])}
		}
		return []taintVal{{}}
	}
	if isBuiltinCall(info, call) {
		id, _ := ast.Unparen(call.Fun).(*ast.Ident)
		switch id.Name {
		case "len", "cap", "new", "make":
			return []taintVal{{}}
		default: // append, min, max, copy...
			var out taintVal
			for _, a := range call.Args {
				out = out.union(p.eval(a))
			}
			return []taintVal{out}
		}
	}

	site := p.e.resolveCall(info, call)
	nResults := 1
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		nResults = sig.Results().Len()
	}
	out := make([]taintVal, nResults)

	// Source calls mint taint on every result (and on pointer arguments
	// and receivers, which the source may have written through —
	// fmt.Fprintf(&b, "%p", x) taints b).
	for _, c := range site.Callees {
		if desc, ok := p.st.spec.IsSource(c, call); ok {
			w := &Witness{Pos: call.Pos(), Desc: desc}
			minted := taintVal{mask: sourceBit, src: w}
			for i := range out {
				out[i] = out[i].union(minted)
			}
			p.taintMutableOperands(call, minted)
			return out
		}
	}

	summarized := false
	for _, c := range site.Callees {
		sum := p.st.summaries[c]
		if sum == nil {
			continue
		}
		summarized = true
		for r := 0; r < len(sum.ResultTaint) && r < len(out); r++ {
			mask := sum.ResultTaint[r]
			if mask&sourceBit != 0 {
				w := sum.ResultWitness[r]
				if w == nil {
					w = &Witness{Pos: call.Pos(), Desc: "nondeterministic callee"}
				}
				out[r] = out[r].union(taintVal{mask: sourceBit, src: w})
			}
			for pi := 0; pi < 60; pi++ {
				if mask&(1<<uint(pi)) == 0 {
					continue
				}
				if arg := p.argForParam(site, c, call, pi); arg != nil {
					out[r] = out[r].union(p.eval(arg))
				}
			}
		}
	}
	if !summarized {
		// Unresolved or external callee: propagate argument (and
		// receiver) taint through to every result, except arguments at
		// contractually sanitized parameter positions.
		var all taintVal
		for ai, a := range call.Args {
			if p.argSanitized(site, call, ai) {
				continue
			}
			all = all.union(p.eval(a))
		}
		var recvRoot *types.Var
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := info.Selections[sel]; isSel {
				all = all.union(p.eval(sel.X))
				recvRoot = p.rootVar(sel.X)
			}
		}
		for i := range out {
			out[i] = out[i].union(all)
		}
		// Externals may store into pointer arguments and receivers:
		// fmt.Fprintf(&b, tainted) taints b, b.WriteString(tainted)
		// taints b. This is how builder-then-hash pipelines (e.g.
		// Config.Fingerprint) stay connected.
		if all.mask != 0 {
			if recvRoot != nil {
				p.set(recvRoot, all)
			}
			p.taintMutableOperands(call, all)
		}
	}
	return out
}

// argSanitized reports whether the call's ai'th argument lands on a
// parameter position some resolved callee contractually sanitizes.
func (p *propagation) argSanitized(site CallSite, call *ast.CallExpr, ai int) bool {
	if p.st.spec.Sanitizes == nil {
		return false
	}
	for _, c := range site.Callees {
		bits := p.st.spec.Sanitizes(c)
		if bits == 0 {
			continue
		}
		if pi := calleeParamIndex(c, call, ai); pi >= 0 && pi < 60 && bits&(1<<uint(pi)) != 0 {
			return true
		}
	}
	return false
}

// taintMutableOperands taints the roots of pointer-shaped arguments of
// a call whose callee may write through them.
func (p *propagation) taintMutableOperands(call *ast.CallExpr, val taintVal) {
	for _, a := range call.Args {
		a = ast.Unparen(a)
		if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if root := p.rootVar(u.X); root != nil {
				p.set(root, val)
			}
			continue
		}
		if t := p.info.TypeOf(a); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				if root := p.rootVar(a); root != nil {
					p.set(root, val)
				}
			}
		}
	}
}

// argForParam maps callee parameter index pi (receiver = 0 for
// methods) back to the argument expression at this call site.
func (p *propagation) argForParam(site CallSite, callee *types.Func, call *ast.CallExpr, pi int) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil {
		if isMethodExprCall(call, sig) {
			if pi < len(call.Args) {
				return call.Args[pi]
			}
			return nil
		}
		if pi == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		pi--
	}
	if sig.Variadic() && pi >= sig.Params().Len()-1 {
		// Union of the variadic tail: return the first tail arg; the
		// caller unions the rest via repeated bits... keep it simple
		// and evaluate the whole tail here is not possible, so pick
		// each tail argument by repeated calls: compensate by letting
		// sinkPass and callResults union the tail explicitly.
		if sig.Params().Len()-1 < len(call.Args) {
			return call.Args[sig.Params().Len()-1]
		}
		return nil
	}
	if pi < len(call.Args) {
		return call.Args[pi]
	}
	return nil
}

// variadicTail returns every argument bound to a variadic final
// parameter, so taint unions over the whole tail.
func variadicTail(callee *types.Func, call *ast.CallExpr) []ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !sig.Variadic() {
		return nil
	}
	fixed := sig.Params().Len() - 1
	if sig.Recv() != nil && isMethodExprCall(call, sig) {
		fixed++
	}
	if fixed >= len(call.Args) {
		return nil
	}
	return call.Args[fixed:]
}

func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	id, _ := sel.X.(*ast.Ident)
	return id
}

// sinkPass scans every call site for sink hits: tainted arguments into
// spec sinks, and tainted arguments into callees whose summaries reach
// a sink. Updates sum.SinkParams; appends to flows when non-nil.
func (p *propagation) sinkPass(sum *TaintSummary, flows *[]Flow) bool {
	grew := false
	report := func(pos token.Pos, desc string, val taintVal) {
		if val.mask&sourceBit != 0 {
			if flows != nil {
				w := Witness{Desc: "nondeterminism source"}
				if val.src != nil {
					w = *val.src
				}
				*flows = append(*flows, Flow{Fn: p.fi.Obj, Pos: pos, SinkDesc: desc, Source: w})
			}
			return
		}
		if val.mask&orderBit != 0 && p.inMapRange(pos) {
			if flows != nil {
				w := Witness{Desc: "map iteration order"}
				if val.src != nil && val.src.Desc == "map iteration order" {
					w = *val.src
				}
				*flows = append(*flows, Flow{Fn: p.fi.Obj, Pos: pos, SinkDesc: desc, Source: w})
			}
			return
		}
		// Parameter-rooted: export through the summary.
		for pi := 0; pi < 60; pi++ {
			if val.mask&(1<<uint(pi)) != 0 && sum.SinkParams&(1<<uint(pi)) == 0 {
				sum.SinkParams |= 1 << uint(pi)
				sum.SinkDesc[pi] = desc
				grew = true
			}
		}
	}

	for _, site := range p.fi.calls {
		call := site.Call
		for _, c := range site.Callees {
			// Direct sink per spec.
			if desc, sens, ok := p.st.spec.SinkArgs(c, call, p.info); ok {
				if sens == nil {
					sens = call.Args
				}
				for _, arg := range sens {
					report(arg.Pos(), desc, p.eval(arg))
				}
				continue
			}
			// Transitive sink through the callee's summary.
			calleeSum := p.st.summaries[c]
			if calleeSum == nil || calleeSum.SinkParams == 0 {
				continue
			}
			for pi := 0; pi < 60; pi++ {
				if calleeSum.SinkParams&(1<<uint(pi)) == 0 {
					continue
				}
				desc := calleeSum.SinkDesc[pi]
				if desc == "" {
					desc = "sink inside " + c.Name()
				} else {
					desc += " (via " + c.Name() + ")"
				}
				sig, _ := c.Type().(*types.Signature)
				isVariadicTail := sig != nil && sig.Variadic() &&
					pi == len(paramVars(c))-1
				if isVariadicTail {
					for _, arg := range variadicTail(c, call) {
						report(arg.Pos(), desc, p.eval(arg))
					}
					continue
				}
				if arg := p.argForParam(site, c, call, pi); arg != nil {
					report(arg.Pos(), desc, p.eval(arg))
				}
			}
		}
	}
	return grew
}

func (p *propagation) inMapRange(pos token.Pos) bool {
	for _, r := range p.mapRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}
