package flow_test

import (
	"go/ast"
	"go/types"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// buildEngine loads the engine fixture package and constructs the
// engine over it, returning the engine and the fixture's scope.
func buildEngine(t *testing.T) (*flow.Engine, *types.Scope) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("testdata/src/engine")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture does not type-check: %v", terr)
	}
	eng := flow.Build(pkg.Fset, []flow.PackageUnit{{
		Path:  pkg.PkgPath,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
	}})
	return eng, pkg.Types.Scope()
}

func fnOf(t *testing.T, scope *types.Scope, name string) *types.Func {
	t.Helper()
	fn, ok := scope.Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture function %s not found", name)
	}
	return fn
}

func methodOf(t *testing.T, scope *types.Scope, typeName, method string) *types.Func {
	t.Helper()
	tn, ok := scope.Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("fixture type %s not found", typeName)
	}
	obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, tn.Pkg(), method)
	m, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("method %s.%s not found", typeName, method)
	}
	return m
}

// TestInterfaceDispatch checks that a call through an interface
// resolves to every implementing method with a body in the loaded set.
func TestInterfaceDispatch(t *testing.T) {
	eng, scope := buildEngine(t)
	callees := eng.Callees(fnOf(t, scope, "UseWriter"))
	want := map[*types.Func]bool{
		methodOf(t, scope, "FileW", "Write"): false,
		methodOf(t, scope, "BufW", "Write"):  false,
	}
	for _, c := range callees {
		if _, ok := want[c]; ok {
			want[c] = true
		}
	}
	for fn, seen := range want {
		if !seen {
			t.Errorf("UseWriter callees missing %s", fn.FullName())
		}
	}
}

// TestRecursionSummaries checks that mutually recursive functions land
// in one SCC whose summaries converge, and that a blocking fact in the
// leaf propagates MayBlock through the cycle.
func TestRecursionSummaries(t *testing.T) {
	eng, scope := buildEngine(t)
	ping := fnOf(t, scope, "Ping")
	pong := fnOf(t, scope, "Pong")
	wait := fnOf(t, scope, "wait")

	ws := eng.Summary(wait)
	if ws == nil || len(ws.Blocks) != 1 || ws.Blocks[0].Kind != flow.BlockChanRecv {
		t.Fatalf("wait summary = %+v, want one channel-receive block fact", ws)
	}
	if !eng.MayBlock(ping) || !eng.MayBlock(pong) {
		t.Errorf("MayBlock(Ping)=%v MayBlock(Pong)=%v, want true through the recursive cycle",
			eng.MayBlock(ping), eng.MayBlock(pong))
	}
	if s := eng.Summary(ping); s == nil || len(s.Blocks) != 0 {
		t.Errorf("Ping has direct block facts %+v, want none (it only calls)", s.Blocks)
	}
}

// TestParamDispatch checks the spawn/call/store classification of
// func-typed parameters, including transitive forwarding.
func TestParamDispatch(t *testing.T) {
	eng, scope := buildEngine(t)
	cases := []struct {
		name       string
		wantSpawns bool
		wantCalls  bool
	}{
		{"Spawn", true, false},
		{"CallSync", false, true},
		{"Store", true, false},
		{"SpawnVia", true, false},
	}
	for _, tc := range cases {
		s := eng.Summary(fnOf(t, scope, tc.name))
		if s == nil {
			t.Fatalf("no summary for %s", tc.name)
		}
		if got := s.SpawnsParams&1 != 0; got != tc.wantSpawns {
			t.Errorf("%s SpawnsParams bit0 = %v, want %v", tc.name, got, tc.wantSpawns)
		}
		if got := s.CallsParams&1 != 0; got != tc.wantCalls {
			t.Errorf("%s CallsParams bit0 = %v, want %v", tc.name, got, tc.wantCalls)
		}
	}
}

// TestFloatAccumParams checks pointer-to-float accumulator detection.
func TestFloatAccumParams(t *testing.T) {
	eng, scope := buildEngine(t)
	s := eng.Summary(fnOf(t, scope, "AddInto"))
	if s == nil || s.FloatAccumParams&1 == 0 {
		t.Errorf("AddInto FloatAccumParams = %+v, want bit 0 set", s)
	}
}

// TestTaintFlows drives a minimal source-to-sink spec: direct flows and
// flows laundered through a helper report; constants do not.
func TestTaintFlows(t *testing.T) {
	eng, scope := buildEngine(t)
	spec := &flow.TaintSpec{
		Name: "test",
		IsSource: func(fn *types.Func, _ *ast.CallExpr) (string, bool) {
			return "Source", fn.Name() == "Source"
		},
		SinkArgs: func(fn *types.Func, _ *ast.CallExpr, _ *types.Info) (string, []ast.Expr, bool) {
			return "Sink", nil, fn.Name() == "Sink"
		},
	}
	flows := eng.Taint(spec)
	got := map[string]int{}
	for _, fl := range flows {
		got[fl.Fn.Name()]++
	}
	for _, name := range []string{"Direct", "Laundered"} {
		if got[name] != 1 {
			t.Errorf("flows in %s = %d, want 1", name, got[name])
		}
	}
	if got["Clean"] != 0 {
		t.Errorf("Clean reported %d flows, want 0", got["Clean"])
	}
	_ = fnOf(t, scope, "Clean")
}
