package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath string // import path within the module (e.g. "repro/internal/core")
	Dir     string // absolute directory
	Fset    *token.FileSet
	Files   []*ast.File // non-test files, sorted by file name
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checker diagnostics. A package that fails
	// to type-check is still returned (with partial type information) so
	// the driver can surface the diagnostics instead of panicking, but
	// analyzers should not be trusted on it.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single Go module without
// invoking the go tool. Module-internal imports are resolved against the
// module root recursively; standard-library imports are type-checked
// from GOROOT source via go/importer. Loading is memoized per import
// path, and the entire loader shares one FileSet so positions compose.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute directory containing go.mod
	ModulePath string // module path declared in go.mod
	baseDir    string // directory relative patterns are resolved against

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader finds the enclosing module of dir (walking up to the
// go.mod) and returns a loader whose relative patterns resolve against
// dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %s: %w", dir, err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		baseDir:    abs,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Load resolves package patterns and returns the matched packages sorted
// by import path. Supported patterns: "./...", "./dir/...", "./dir", and
// plain directory paths, all relative to the directory NewLoader was
// given. Directories named testdata or vendor, and hidden or
// underscore-prefixed directories, are skipped by "..." expansion (but
// can still be named directly, which is how fixture tests load them).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.baseDir, dir)
		}
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: not a directory: %s", pat, dir)
		}
		if !rec {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %s: %w", dir, err)
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// Loaded returns every package the loader has type-checked so far —
// the requested patterns plus every module-internal dependency pulled
// in during type checking — sorted by import path. Callers hand these
// to RunSuite as engine dependencies so interprocedural summaries
// exist for helper packages even when only a subset was requested
// (fixture tests load one directory but still need the bodies of
// repro/internal/parallel and friends).
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && buildableGoFile(e.Name()) {
			return true
		}
	}
	return false
}

// buildableGoFile reports whether name is a non-test Go source file that
// the loader should include.
func buildableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loadDir loads the package in an absolute directory.
func (l *Loader) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path)
}

// loadPath loads (or returns the memoized) package for a module-internal
// import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && buildableGoFile(e.Name()) {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(fileNames)

	pkg := &Package{PkgPath: path, Dir: dir, Fset: l.Fset}
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importerFunc(l.importDep),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error when TypeErrors is non-empty; the package is
	// still populated with whatever type information survived, which is
	// exactly the graceful-degradation behavior we want.
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// importDep resolves one import during type checking: module-internal
// paths recurse through the loader, everything else goes to the
// GOROOT source importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("analysis: dependency %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
