// Fixture for //rcpt:allow suppression handling: the first two folds are
// annotated (same line, line above) and must be silenced; the third is
// not and must still be reported.
package suppress

func sums(m map[string]float64) (float64, float64, float64) {
	var a, b, c float64
	for _, v := range m {
		a += v //rcpt:allow maporder fixture: deliberately tolerated
	}
	for _, v := range m {
		//rcpt:allow maporder
		b += v
	}
	for _, v := range m {
		c += v // want `float accumulation into "c" inside range over map`
	}
	return a, b, c
}
