// Fixture for the rngpurity analyzer's cluster scope: the peer layer
// executes pipeline stages on behalf of other replicas, so ambient
// time or env reads there would let remotely computed bytes diverge
// from local ones. Clocks must be injected (Options.Now), never read.
package cluster

import (
	"os"
	"time"
)

// leaseEntry shows the legal use of package time: durations and
// comparisons on injected values.
type leaseEntry struct {
	expires time.Time
}

// expiredAmbient reads the wall clock directly — the violation.
func expiredAmbient(e leaseEntry) bool {
	return !time.Now().Before(e.expires) // want `call to time.Now in deterministic pipeline package "cluster"`
}

// expiredInjected is the production shape: the clock arrives as a
// value; referencing time.Now as a *default* is the caller's call
// site, not this package's.
func expiredInjected(e leaseEntry, now func() time.Time) bool {
	return !now().Before(e.expires)
}

// defaultClock pins that a bare reference (no call) stays legal: it is
// how Options.Now defaults without the package ever reading time
// itself.
var defaultClock func() time.Time = time.Now

// peerFromEnv reads ambient configuration — also forbidden; membership
// arrives by flag.
func peerFromEnv() string {
	return os.Getenv("RCPT_PEERS") // want `call to os.Getenv in deterministic pipeline package "cluster"`
}
