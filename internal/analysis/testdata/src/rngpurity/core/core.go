// Fixture for the rngpurity analyzer: this package is named "core", so
// it is treated as a deterministic pipeline package.
package core

import (
	"math/rand" // want `deterministic pipeline package "core" imports math/rand`
	"os"
	"time"
)

// Timeout uses the time package legitimately: durations are fine, only
// ambient "now" reads are not.
const Timeout = 5 * time.Second

func stamp() int64 {
	return time.Now().Unix() // want `call to time.Now in deterministic pipeline package "core"`
}

func ambientSeed() string {
	return os.Getenv("RCPT_SEED") // want `call to os.Getenv in deterministic pipeline package "core"`
}

func draw() float64 {
	return rand.Float64()
}

// hostname is allowed: only env reads are ambient inputs the analyzer
// polices (file IO is the caller's explicit choice).
func hostname() (string, error) {
	return os.Hostname()
}
