// Fixture for the rngpurity analyzer, negative case: "render" is not a
// pipeline package, so wall-clock reads and env lookups are fine here.
package render

import (
	"os"
	"time"
)

func Stamp() string {
	return time.Now().Format(time.RFC3339)
}

func Theme() string {
	return os.Getenv("RCPT_THEME")
}
