// Fixture for the splitshare analyzer: one *rng.RNG stream consumed by
// more than one closure or goroutine.
package splitshare

import (
	"repro/internal/parallel"
	"repro/internal/rng"
)

// sharedAcrossStages captures one stream in two stage closures: the
// stage schedule decides who draws first, so output depends on workers.
func sharedAcrossStages(seed uint64) error {
	r := rng.New(seed)
	var a, b float64
	g := parallel.NewGraph()
	g.Add("a", func() error {
		a = r.Float64() // want `rng stream "r" is captured by 2 closures/goroutines`
		return nil
	})
	g.Add("b", func() error {
		b = r.Float64()
		return nil
	})
	if err := g.Run(0); err != nil {
		return err
	}
	_, _ = a, b
	return nil
}

// sharedAcrossGoroutines passes one stream into two named-function
// goroutines; same race, different spelling.
func sharedAcrossGoroutines(seed uint64) {
	r := rng.New(seed)
	go consume(r) // want `rng stream "r" is captured by 2 closures/goroutines`
	go consume(r)
}

func consume(r *rng.RNG) { r.Uint64() }

// splitPerStage is the blessed convention: each consumer gets its own
// SplitNamed child before the fan-out, so captures are distinct streams.
func splitPerStage(seed uint64) error {
	root := rng.New(seed)
	ra := root.SplitNamed("a")
	rb := root.SplitNamed("b")
	var a, b float64
	g := parallel.NewGraph()
	g.Add("a", func() error {
		a = ra.Float64()
		return nil
	})
	g.Add("b", func() error {
		b = rb.Float64()
		return nil
	})
	if err := g.Run(0); err != nil {
		return err
	}
	_, _ = a, b
	return nil
}

// derivationOnly captures the parent in both closures but only to derive
// named children; SplitNamed never advances the parent, so this is safe.
func derivationOnly(seed uint64) error {
	root := rng.New(seed)
	var a, b float64
	g := parallel.NewGraph()
	g.Add("a", func() error {
		a = root.SplitNamed("a").Float64()
		return nil
	})
	g.Add("b", func() error {
		b = root.SplitNamed("b").Float64()
		return nil
	})
	if err := g.Run(0); err != nil {
		return err
	}
	_, _ = a, b
	return nil
}

// singleConsumer is one closure drawing from one stream: fine.
func singleConsumer(seed uint64) float64 {
	r := rng.New(seed)
	f := func() float64 { return r.Float64() }
	return f()
}
