// Fixture for stale //rcpt:allow auditing: a directive that suppresses
// a live finding is fine; one that suppresses nothing, or names an
// unknown analyzer, is reported by RunSuite as a staleallow finding.
package stalecheck

func sums(m map[string]float64) (float64, float64) {
	var a, b float64
	for _, v := range m {
		a += v //rcpt:allow maporder Live directive: suppresses a real finding.
	}
	for _, v := range m {
		_ = v
	}
	//rcpt:allow maporder Stale: nothing on the next line violates anything.
	b = 1
	//rcpt:allow nosuchanalyzer Typo that must be caught.
	return a, b
}
