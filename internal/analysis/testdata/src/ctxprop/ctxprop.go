// Fixture for the ctxprop analyzer: blocking functions reachable from
// context-aware roots must accept a context.Context.
package ctxprop

import (
	"context"
	"sync"
	"time"
)

// drain blocks on a bare receive and is called from a ctx-aware root
// without taking ctx: cancellation stops propagating right here.
func drain(ch chan int) int {
	return <-ch // want `drain blocks \(receive from ch\) and is reachable from context-aware callers but takes no context\.Context; plumb ctx so cancellation reaches the wait`
}

// backoff sleeps, two frames below the root.
func backoff() {
	time.Sleep(10 * time.Millisecond) // want `backoff blocks \(time\.Sleep\) and is reachable from context-aware callers but takes no context\.Context`
}

func retryLoop() {
	for i := 0; i < 3; i++ {
		backoff()
	}
}

// Run is the context-aware root; it never blocks directly, so only its
// ctx-less blocking callees are flagged.
func Run(ctx context.Context, ch chan int) int {
	_ = ctx
	retryLoop()
	return drain(ch)
}

// --- exempt shapes below: no findings allowed ---

// drainCtx is the fixed spelling of drain: it takes ctx and selects on
// it, so cancellation reaches the wait.
func drainCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func RunCtx(ctx context.Context, ch chan int) int {
	return drainCtx(ctx, ch)
}

// forkJoin launches its own goroutines; its Wait is bounded by its own
// spawned work, so requiring ctx here would plumb signatures through
// every fan-out helper for no added responsiveness.
func forkJoin(xs []int) int {
	var wg sync.WaitGroup
	out := make([]int, len(xs))
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) {
			defer wg.Done()
			out[i] = x * 2
		}(i, x)
	}
	wg.Wait()
	s := 0
	for _, v := range out {
		s += v
	}
	return s
}

func RunForkJoin(ctx context.Context, xs []int) int {
	_ = ctx
	return forkJoin(xs)
}

// unreachedWait blocks but is never called from a context-aware root,
// so it is outside ctxprop's contract.
func unreachedWait(ch chan int) int {
	return <-ch
}
