// Fixture for the maporder analyzer: order-sensitive work inside range
// over a map. `// want` lines are true positives; everything else must
// stay clean.
package maporder

import "sort"

// meanShare folds floats in map iteration order — the jainFairness bug.
func meanShare(shares map[string]float64) float64 {
	total := 0.0
	for _, v := range shares {
		total += v // want `float accumulation into "total" inside range over map`
	}
	return total / float64(len(shares))
}

// plusSpelling catches the x = x + v spelling of the same fold.
func plusSpelling(shares map[string]float64) float64 {
	total := 0.0
	for _, v := range shares {
		total = total + v // want `float accumulation into "total" inside range over map`
	}
	return total
}

// collectUnsorted lets map iteration order escape through a slice.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map`
	}
	return keys
}

// collectSorted is the blessed idiom: the sort right after the loop
// erases the iteration order, so it must not be flagged.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSortSlice is the comparator variant of the blessed idiom.
func collectSortSlice(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m[keys[i]] > m[keys[j]] })
	return keys
}

// intCount is exact integer arithmetic: commutative, so order-free.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// keyedWrites write through the key, which is deterministic per entry.
func keyedWrites(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// localAccumulator is reset every iteration; nothing escapes.
func localAccumulator(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		if s > 1 {
			n++
		}
	}
	return n
}
