// Fixture for the rcptlint -json golden test: a main package (so
// errdrop applies) with one errdrop and one maporder violation, pinned
// so the JSON output shape stays stable for downstream tooling.
package main

import "os"

func main() {
	f, err := os.Create("scratch.txt")
	if err != nil {
		return
	}
	defer f.Close()
	shares := map[string]float64{"cpu": 0.6, "gpu": 0.4}
	total := 0.0
	for _, v := range shares {
		total += v
	}
	_ = total
}
