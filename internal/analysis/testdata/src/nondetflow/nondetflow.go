// Fixture for the nondetflow analyzer: ambient-nondeterminism sources
// flowing into artifact-byte sinks, directly and through helpers, next
// to clean flows that must stay silent.
package nondetflow

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/parallel"
	"repro/internal/report"
)

// directEnvHash feeds an environment variable straight into a hash: the
// fingerprint depends on the machine, not the config.
func directEnvHash() [32]byte {
	return sha256.Sum256([]byte(os.Getenv("RCPT_TAG"))) // want `nondeterministic value from os.Getenv \(nondetflow\.go:\d+\) reaches hash input sha256\.Sum256`
}

// stamp launders a wall-clock read through a helper; the taint rides
// the return value.
func stamp() string {
	return time.Now().Format(time.RFC3339)
}

// stampedRow sinks the helper's result into a report table.
func stampedRow(t *report.Table) {
	t.MustAddRow("run", stamp()) // want `nondeterministic value from time\.Now \(nondetflow\.go:\d+\) reaches report\.Table\.MustAddRow`
}

// meta carries the taint through a struct field.
type meta struct{ host string }

func gather() meta {
	h, _ := os.Hostname()
	return meta{host: h}
}

func hostRow(t *report.Table) {
	m := gather()
	t.MustAddRow("host", fmt.Sprintf("%s", m.host)) // want `nondeterministic value from os\.Hostname \(nondetflow\.go:\d+\) reaches report\.Table\.MustAddRow`
}

// writeRow is a sink one frame down: its second parameter reaches
// MustAddRow, so tainted arguments at its call sites are reported.
func writeRow(t *report.Table, v string) {
	t.MustAddRow("v", v)
}

func timestampViaHelper(t *report.Table) {
	writeRow(t, time.Now().String()) // want `nondeterministic value from time\.Now \(nondetflow\.go:\d+\) reaches report\.Table\.MustAddRow \(via writeRow\)`
}

// globalRandRow draws from the process-global source.
func globalRandRow(t *report.Table) {
	t.MustAddRow("j", fmt.Sprintf("%f", rand.Float64())) // want `nondeterministic value from math/rand\.Float64 \(global rand\) \(nondetflow\.go:\d+\) reaches report\.Table\.MustAddRow`
}

// mapOrderRow emits rows while ranging over a map: row order depends on
// iteration order, which reaches the artifact inside the loop.
func mapOrderRow(t *report.Table, m map[string]int) {
	for k := range m {
		t.MustAddRow("k", k) // want `nondeterministic value from map iteration order \(nondetflow\.go:\d+\) reaches report\.Table\.MustAddRow`
	}
}

// --- clean flows below: no findings allowed ---

// constHash hashes a constant: pure function of the source text.
func constHash() [32]byte {
	return sha256.Sum256([]byte("v1"))
}

// seededRow draws from an explicitly seeded stream, which is
// deterministic given the seed.
func seededRow(t *report.Table, seed int64) {
	r := rand.New(rand.NewSource(seed))
	t.MustAddRow("x", fmt.Sprintf("%f", r.Float64()))
}

// sanitizedWorkers passes a machine-dependent worker count to
// parallel.Map, whose results land by index: the sanitizer strips the
// width taint, so the summed result is clean.
func sanitizedWorkers(t *report.Table, xs []int) error {
	parts, err := parallel.Map(parallel.Workers(), xs, func(i, x int) (int, error) {
		return x * 2, nil
	})
	if err != nil {
		return err
	}
	s := 0
	for _, p := range parts {
		s += p
	}
	t.MustAddRow("sum", fmt.Sprintf("%d", s))
	return nil
}

// timingToStderr measures wall time but never lets it near an artifact;
// diagnostics are allowed to be nondeterministic.
func timingToStderr() {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "elapsed %v\n", time.Since(start))
}
