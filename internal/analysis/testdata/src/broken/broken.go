// Fixture for loader error handling: this package deliberately fails to
// type-check, and the loader must surface a diagnostic instead of
// panicking.
package broken

func Mismatched() int {
	var n int = "not an int"
	return n
}
