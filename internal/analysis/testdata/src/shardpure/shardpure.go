// Fixture for the shardpure analyzer: closures passed to the
// shard-parallel table helpers must be order-insensitive and
// capture-free.
package shardpure

import (
	"time"

	"repro/internal/table"
)

type row struct {
	V float64
	N int
}

// sumFold accumulates floats in the fold and merge closures: changing
// the shard count re-associates the sum and changes artifact bits.
func sumFold(t table.Table[row], shards int) (float64, error) {
	return table.ShardFold(t, shards,
		func() float64 { return 0 },
		func(acc float64, r row) float64 {
			return acc + r.V // want `order-sensitive float accumulation in a ShardFold closure; float folds re-associate across shard counts — use table\.FoldSeq`
		},
		func(a, b float64) float64 {
			return a + b // want `order-sensitive float accumulation in a ShardFold closure`
		},
	)
}

// countCaptured writes a variable captured from the enclosing scope:
// shards run concurrently, so the writes race.
func countCaptured(t table.Table[row], shards int) (int, error) {
	seen := 0
	n, err := table.ShardFold(t, shards,
		func() int { return 0 },
		func(acc int, r row) int {
			seen++ // want `ShardFold closure writes captured variable "seen"; shards run concurrently, so escaping writes land in completion order`
			return acc + 1
		},
		func(a, b int) int { return a + b },
	)
	_ = seen
	return n, err
}

// stampedRows draws wall-clock time per row: the artifact depends on
// when the shard ran, not on the row.
func stampedRows(t table.Table[row], shards int) ([]string, error) {
	return table.ShardCollect(t, shards, func(r row) string {
		return time.Now().String() // want `ShardCollect closure calls time\.Now; per-row values must be a function of the row, not ambient state`
	})
}

// addInto hides the float accumulation behind a helper taking a
// pointer into the accumulator.
func addInto(p *float64, v float64) { *p += v }

func hiddenFold(t table.Table[row], shards int) (float64, error) {
	return table.ShardFold(t, shards,
		func() float64 { return 0 },
		func(acc float64, r row) float64 {
			addInto(&acc, r.V) // want `ShardFold closure passes &acc to a float-accumulating helper; the hidden \+= re-associates across shard counts — use table\.FoldSeq`
			return acc
		},
		func(a, b float64) float64 {
			addInto(&a, b) // want `ShardFold closure passes &a to a float-accumulating helper`
			return a
		},
	)
}

// --- legal shapes below: no findings allowed ---

// totalN folds ints, which are exact: shard count cannot change the
// result.
func totalN(t table.Table[row], shards int) (int, error) {
	return table.ShardFold(t, shards,
		func() int { return 0 },
		func(acc int, r row) int { return acc + r.N },
		func(a, b int) int { return a + b },
	)
}

// scaled does float math per row in ShardCollect: results land by row
// index, so order cannot leak.
func scaled(t table.Table[row], shards int) ([]float64, error) {
	return table.ShardCollect(t, shards, func(r row) float64 {
		return r.V * 2
	})
}

// maxFold computes an order-free float reduction without arithmetic on
// the accumulator: comparisons are associative and commutative.
func maxFold(t table.Table[row], shards int) (float64, error) {
	return table.ShardFold(t, shards,
		func() float64 { return 0 },
		func(acc float64, r row) float64 {
			if r.V > acc {
				return r.V
			}
			return acc
		},
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
	)
}
