// Fixture for the errdrop analyzer's serve scope: HTTP-handler-shaped
// code where a dropped write or encode error ships a truncated response
// body under a success status. The ResponseWriter stand-in is local so
// the fixture loads without pulling in net/http.
package serve

import (
	"bufio"
	"encoding/json"
	"io"
)

// responseWriter mirrors the error-returning surface of
// http.ResponseWriter.
type responseWriter interface {
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

// handlerDropsWrite is the classic handler bug: the body write's error
// disappears, so a half-sent response still looks like a 200 served.
func handlerDropsWrite(w responseWriter, body []byte) {
	w.WriteHeader(200)
	w.Write(body) // want `error from responseWriter.Write is discarded`
}

// handlerDropsEncode loses the json.Encoder error the same way.
func handlerDropsEncode(w responseWriter, payload any) {
	w.WriteHeader(200)
	json.NewEncoder(w).Encode(payload) // want `error from \*encoding/json.Encoder.Encode is discarded`
}

// deferredFlush drops the buffered writer's flush on the way out.
func deferredFlush(w io.Writer, body []byte) error {
	bw := bufio.NewWriter(w)
	defer bw.Flush() // want `error from \*bufio.Writer.Flush is discarded`
	_, err := bw.Write(body)
	return err
}

// handlerCountsFailure is the shape the serving layer uses: the write
// error feeds a metric instead of vanishing.
func handlerCountsFailure(w responseWriter, body []byte, failures *int) {
	w.WriteHeader(200)
	if _, err := w.Write(body); err != nil {
		*failures++
	}
}

// handlerPropagatesEncode returns the encoder error to the caller.
func handlerPropagatesEncode(w responseWriter, payload any) error {
	return json.NewEncoder(w).Encode(payload)
}
