// Fixture for the errdrop analyzer: this package is named "report", so
// silently dropped writer/closer errors are findings.
package report

import (
	"io"
	"os"
	"strings"
)

// writeSilently drops every write-path error on the floor.
func writeSilently(path, body string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	io.WriteString(f, body) // want `error from io.WriteString is discarded`
	f.Close()               // want `error from \*os.File.Close is discarded`
}

// deferredClose is the classic buffered-write data loss: the deferred
// Close error vanishes.
func deferredClose(path, body string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `error from \*os.File.Close is discarded`
	_, err = io.WriteString(f, body)
	return err
}

// copySilently discards io.Copy's error.
func copySilently(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want `error from io.Copy is discarded`
}

// handled propagates everything: the shape the package should have.
func handled(path, body string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = io.WriteString(f, body)
	return err
}

// builderWrites hit an error-free sink; strings.Builder never fails, so
// discarding its results is idiomatic and clean.
func builderWrites(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	return b.String()
}

// explicitDiscard is visible at the call site, which is the point: the
// reader can see the decision, so the analyzer leaves it alone.
func explicitDiscard(f *os.File) {
	_ = f.Close()
}
