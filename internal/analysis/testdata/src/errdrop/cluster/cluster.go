// Fixture for the errdrop analyzer's cluster scope: peer protocol code
// where a silently dropped write truncates a stage-table response —
// the thief's checksum catches it, but as a spurious integrity failure
// pointing at the network instead of the bug.
package cluster

import "io"

// closer mirrors the error-returning surface of a response body.
type closer interface {
	Close() error
}

// shipStage drops the envelope write's error: the peer sees a
// truncated stream and blames the transport.
func shipStage(w io.Writer, envelope []byte) {
	w.Write(envelope) // want `error from io.Writer.Write is discarded`
}

// drainClose is the production shape: the discard is explicit, so it
// reads as a decision rather than an accident.
func drainClose(body closer) {
	_ = body.Close()
}

// shipStageChecked propagates the write error to the dispatch layer.
func shipStageChecked(w io.Writer, envelope []byte) error {
	_, err := w.Write(envelope)
	return err
}
