// Fixture for the errdrop analyzer, negative case: package "other" is
// neither a report renderer nor a CLI, so it is out of scope even when
// it drops a Close error.
package other

import "os"

func Touch(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
