// Fixture for the floatfold analyzer: float reductions folded in
// goroutine completion order.
package floatfold

import (
	"sync"

	"repro/internal/parallel"
)

// channelSum receives partials in completion order and folds them into a
// float: a different schedule gives different low bits.
func channelSum(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want `float accumulation into shared "sum" while ranging over a channel`
	}
	return sum
}

// mutexSum is the shared-accumulator-under-a-mutex pattern: the mutex
// removes the race but not the completion-order dependence.
func mutexSum(parts [][]float64) float64 {
	var (
		mu  sync.Mutex
		sum float64
		wg  sync.WaitGroup
	)
	for _, part := range parts {
		wg.Add(1)
		go func(vs []float64) {
			defer wg.Done()
			local := 0.0
			for _, v := range vs {
				local += v
			}
			mu.Lock()
			sum += local // want `float accumulation into shared "sum" inside a goroutine`
			mu.Unlock()
		}(part)
	}
	wg.Wait()
	return sum
}

// poolAppend collects float results from pool tasks in completion order;
// any later non-commutative fold inherits that order.
func poolAppend(parts []float64) ([]float64, error) {
	var (
		mu  sync.Mutex
		out []float64
	)
	pool := parallel.NewPool(2, 4)
	for _, p := range parts {
		p := p
		if err := pool.Submit(func() error {
			mu.Lock()
			out = append(out, p*p) // want `append of float values to shared "out" inside a concurrently executed closure`
			mu.Unlock()
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := pool.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// chunkFold is the deterministic pattern: per-chunk partials land at
// their chunk index and are folded sequentially in index order.
func chunkFold(xs []float64) (float64, error) {
	partials, err := parallel.MapChunks(4, len(xs), func(c parallel.Chunk) (float64, error) {
		s := 0.0
		for _, v := range xs[c.Lo:c.Hi] {
			s += v
		}
		return s, nil
	})
	if err != nil {
		return 0, err
	}
	return parallel.Fold(partials, 0.0, func(a, p float64) float64 { return a + p }), nil
}

// intChannelCount is exact integer arithmetic: completion order cannot
// change the result, so counting from a channel is fine.
func intChannelCount(ch chan int) int {
	n := 0
	for v := range ch {
		n += v
	}
	return n
}

// stageLocalSum accumulates into a variable declared inside the stage
// closure; nothing shared, nothing flagged.
func stageLocalSum(parts []float64) error {
	g := parallel.NewGraph()
	g.Add("sum", func() error {
		s := 0.0
		for _, v := range parts {
			s += v
		}
		_ = s
		return nil
	})
	return g.Run(0)
}
