// Fixture for the panicsafe analyzer's cluster scope: the peer layer's
// background goroutines (health prober, async close waiter) live as
// long as the daemon, so every one needs a panic backstop.
package cluster

func probeRound() {}

// bareProber is the violation the scope exists to catch: a prober
// goroutine with no recover takes the whole replica down with it.
func bareProber() {
	go func() { // want `goroutine does not recover panics`
		for {
			probeRound()
		}
	}()
}

// probeLoop is the production shape: a named loop whose own body
// installs the recover, launched via `go named(...)`.
func probeLoop() {
	defer func() {
		if p := recover(); p != nil {
			_ = p
		}
	}()
	for {
		probeRound()
	}
}

func startProber() {
	go probeLoop()
}

// closeWaiter is the bounded-wait shape from Cluster.Close: the inline
// literal recovers before waiting.
func closeWaiter(done chan struct{}) {
	go func() {
		defer close(done)
		defer func() {
			_ = recover()
		}()
		probeRound()
	}()
}
