// Fixture proving panicsafe ignores packages outside its scope: the
// same bare-goroutine shapes that are violations in serve/parallel/main
// are accepted here, because this code runs inside graph stages or
// short-lived tools where the process-lifetime argument does not apply.
package other

func work() {}

func bareGoroutineOutOfScope() {
	go func() {
		work()
	}()
}

func namedOutOfScope() {
	go work()
}
