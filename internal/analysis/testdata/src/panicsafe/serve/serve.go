// Fixture for the panicsafe analyzer: goroutines in a scoped package
// (named "serve") must install a panic backstop. Positive cases carry
// want annotations; the clean shapes exercise every accepted form of
// the deferred recover.
package serve

func work() {}

// bareGoroutine is the canonical violation: any panic in work unwinds
// off the top of the goroutine stack and kills the process.
func bareGoroutine() {
	go func() { // want `goroutine does not recover panics`
		work()
	}()
}

// inlineRecover is the canonical fix.
func inlineRecover() {
	go func() {
		defer func() {
			if p := recover(); p != nil {
				_ = p
			}
		}()
		work()
	}()
}

// recoverPanic is a same-package recoverer helper; deferring it counts.
func recoverPanic() {
	if p := recover(); p != nil {
		_ = p
	}
}

func helperRecover() {
	go func() {
		defer recoverPanic()
		work()
	}()
}

// lateDefer installs the backstop after other statements; the defer
// still covers the panic-prone call below it, so this is accepted.
func lateDefer(ready chan struct{}) {
	go func() {
		<-ready
		defer recoverPanic()
		work()
	}()
}

// nestedRecover looks safe but is not: recover() only stops a panic
// when called directly by the deferred function, and here it sits one
// closure deeper, so it always returns nil.
func nestedRecover() {
	go func() { // want `goroutine does not recover panics`
		defer func() {
			func() { _ = recover() }()
		}()
		work()
	}()
}

// deferWithoutRecover has a defer, just not a recovering one.
func deferWithoutRecover(done chan struct{}) {
	go func() { // want `goroutine does not recover panics`
		defer close(done)
		work()
	}()
}

// safeWorker owns its recover, so launching it bare is fine.
func safeWorker() {
	defer recoverPanic()
	work()
}

func namedSafe() {
	go safeWorker()
}

// unsafeWorker has no backstop of its own.
func unsafeWorker() {
	work()
}

func namedUnsafe() {
	go unsafeWorker() // want `goroutine target has no panic backstop`
}

type server struct{}

func (s *server) loopSafe() {
	defer recoverPanic()
	work()
}

func (s *server) loopUnsafe() {
	work()
}

func methods(s *server) {
	go s.loopSafe()
	go s.loopUnsafe() // want `goroutine target has no panic backstop`
}

// funcValue cannot be resolved to a body at analysis time, so it must
// be wrapped in a recovering literal instead.
func funcValue(fn func()) {
	go fn() // want `goroutine target has no panic backstop`
}
