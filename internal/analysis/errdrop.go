package analysis

import (
	"go/ast"
	"go/types"
)

// writerCloserMethods are the method names whose discarded error loses
// written data or masks a failed flush: the classic `defer f.Close()` on
// a file being written.
var writerCloserMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"ReadFrom":    true,
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
	// json.Encoder.Encode and similar: in an HTTP handler a failed
	// Encode means a truncated response body went out with a 200.
	"Encode": true,
}

// writerCloserFuncs are package-level functions with the same failure
// mode, keyed by import path then name.
var writerCloserFuncs = map[string]map[string]bool{
	"io": {"WriteString": true, "Copy": true},
	"os": {"WriteFile": true},
}

// errdropScopePackages limits the analyzer to where dropped write errors
// corrupt study artifacts: the report renderers, the HTTP serving layer
// (a dropped ResponseWriter or encoder error ships a truncated body with
// a success status), the cluster peer protocol (a dropped write on a
// peer response ships a truncated stage table — caught by the stream
// checksum, but as a spurious integrity failure instead of the real
// cause), and the CLI binaries (package main covers cmd/* and
// examples/*).
var errdropScopePackages = map[string]bool{
	"report":  true,
	"serve":   true,
	"cluster": true,
	"main":    true,
	// stagecache persists stage payloads crash-safely: a dropped write,
	// sync, or close error there would let a torn entry masquerade as a
	// durable one until checksum verification catches it much later.
	"stagecache": true,
}

// ErrDrop flags statements (including defers) that silently discard the
// error from a writer or closer in internal/report or a main package.
// Writes to error-free sinks (strings.Builder, bytes.Buffer) are exempt,
// and an explicit `_ = f.Close()` counts as a deliberate, visible
// discard so it is not flagged.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "report renderers and CLIs must not silently drop writer/closer errors",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	if pass.Pkg == nil || !errdropScopePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if name, ok := droppedWriterError(pass, call); ok {
				pass.Reportf(call.Pos(),
					"error from %s is discarded; handle it, or write `_ = ...`/`//rcpt:allow errdrop` to discard deliberately", name)
			}
			return true
		})
	}
	return nil
}

// droppedWriterError reports whether call is a writer/closer call whose
// last result is an error, returning a human-readable callee name.
func droppedWriterError(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return "", false
	}
	// Package-level functions: io.WriteString, os.WriteFile, ...
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			path := pkgName.Imported().Path()
			if writerCloserFuncs[path][sel.Sel.Name] {
				return path + "." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	// Methods on a writer/closer value.
	if !writerCloserMethods[sel.Sel.Name] {
		return "", false
	}
	recv := pass.Info.TypeOf(sel.X)
	if recv == nil || neverFailsWriter(recv) {
		return "", false
	}
	return types.TypeString(recv, types.RelativeTo(pass.Pkg)) + "." + sel.Sel.Name, true
}

// neverFailsWriter reports whether t is a sink whose write methods are
// documented to always return a nil error.
func neverFailsWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
