package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body either accumulates into a
// floating-point variable declared outside the loop or appends to a
// slice declared outside the loop. Go randomizes map iteration order, so
// both patterns make the result depend on the iteration schedule: float
// addition is not associative, and an escaping slice keeps the visit
// order. This is the exact class of the jainFairness bug PR 1's
// worker-count equivalence test exposed. The fix is to collect and sort
// the keys, then range over the sorted slice — the standard
// collect-then-sort idiom (append inside the loop, sort.Strings/Slice
// right after) erases the order and is recognized as clean.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map must not do order-sensitive accumulation (float folds, unsorted escaping appends)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		sorted := sortCallPositions(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRangeBody(pass, rs, sorted)
			return true
		})
	}
	return nil
}

// sortCallPositions maps each variable to the positions where a
// sort/slices call reorders it (sort.Strings(v), sort.Slice(v, ...),
// slices.SortFunc(v, ...), including through a one-level conversion like
// sort.Sort(byName(v))).
func sortCallPositions(pass *Pass, f *ast.File) map[*types.Var][]token.Pos {
	out := map[*types.Var][]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok || !isSortFunc(pkgName.Imported().Path(), sel.Sel.Name) {
			return true
		}
		arg := call.Args[0]
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = inner.Args[0]
		}
		if argID, ok := arg.(*ast.Ident); ok {
			if v := useObj(pass.Info, argID); v != nil {
				out[v] = append(out[v], call.Pos())
			}
		}
		return true
	})
	return out
}

func isSortFunc(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return name == "Sort" || name == "SortFunc" || name == "SortStableFunc"
	}
	return false
}

// sortedAfter reports whether v is passed to a sort call somewhere after
// pos — the collect-then-sort idiom.
func sortedAfter(sorted map[*types.Var][]token.Pos, v *types.Var, pos token.Pos) bool {
	for _, p := range sorted[v] {
		if p > pos {
			return true
		}
	}
	return false
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorted map[*types.Var][]token.Pos) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) != 1 {
				return true
			}
			if v := escapingAccumulator(pass, as.Lhs[0], rs); v != nil && isFloat(v.Type()) {
				pass.Reportf(as.Pos(),
					"float accumulation into %q inside range over map: result depends on map iteration order; iterate over sorted keys", v.Name())
			}
		case token.ASSIGN:
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				v := escapingAccumulator(pass, lhs, rs)
				if v == nil {
					continue
				}
				if isSelfAppend(pass, as.Rhs[i], v) {
					if !sortedAfter(sorted, v, rs.End()) {
						pass.Reportf(as.Pos(),
							"append to %q inside range over map: element order follows map iteration order; sort %q afterwards or iterate over sorted keys", v.Name(), v.Name())
					}
				} else if isFloat(v.Type()) && isSelfArithmetic(pass, as.Rhs[i], v) {
					pass.Reportf(as.Pos(),
						"float accumulation into %q inside range over map: result depends on map iteration order; iterate over sorted keys", v.Name())
				}
			}
		}
		return true
	})
}

// escapingAccumulator resolves lhs to a plain variable declared outside
// the range statement, i.e. one that survives the loop. Indexed or
// field targets (m[k] = ..., s.f += ...) are keyed per element and left
// alone.
func escapingAccumulator(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	v := useObj(pass.Info, id)
	if v == nil || declaredWithin(v, rs.Pos(), rs.End()) {
		return nil
	}
	return v
}

// isSelfAppend reports whether rhs is append(v, ...).
func isSelfAppend(pass *Pass, rhs ast.Expr, v *types.Var) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && useObj(pass.Info, arg) == v
}

// isSelfArithmetic reports whether rhs is a binary +,-,*,/ expression
// with v as one operand (the `x = x + y` spelling of accumulation).
func isSelfArithmetic(pass *Pass, rhs ast.Expr, v *types.Var) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	for _, side := range [2]ast.Expr{bin.X, bin.Y} {
		if id, ok := side.(*ast.Ident); ok && useObj(pass.Info, id) == v {
			return true
		}
	}
	return false
}
