package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// pipelinePackages are the deterministic pipeline packages: everything a
// study run's artifacts are computed from. Inside them, all randomness
// must come from internal/rng streams and all "now"-like inputs must be
// injected through configuration, or a run stops being a pure function
// of its seed.
var pipelinePackages = map[string]bool{
	"core":       true,
	"sched":      true,
	"trace":      true,
	"population": true,
	"survey":     true,
	"weighting":  true,
	"trend":      true,
	"growth":     true,
	"modlog":     true,
	"stats":      true,
	// table is artifact storage: its spill layer must take directories
	// explicitly (no os.TempDir/env fallback) and its scans must not
	// depend on ambient state, or artifact bytes stop being a pure
	// function of the seed.
	"table": true,
	// cluster executes pipeline stages on behalf of peers: any ambient
	// time or env read there would make remotely computed bytes diverge
	// from local ones. Leases and breakers take their clock via
	// Options.Now instead.
	"cluster": true,
	// stagecache stores stage outputs that flow straight back into
	// artifacts: its storage decisions (eviction, spill, verification)
	// must never consult ambient time, env, or randomness, or a restored
	// run stops being a pure function of its seed.
	"stagecache": true,
}

// pipelinePaths extends the scope to packages matched by import path
// rather than name — command-line tools whose output feeds recorded
// artifacts. cmd/rcpt-bench parses `go test -bench` output into the
// benchmark JSON that scripts/bench.sh commits, so its bytes must be a
// pure function of its input stream too.
var pipelinePaths = map[string]bool{
	"repro/cmd/rcpt-bench": true,
}

// forbiddenCalls maps package import path -> function names whose call
// sites smuggle ambient nondeterminism into a pipeline package.
var forbiddenCalls = map[string]map[string]bool{
	"time": {"Now": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true},
}

// RNGPurity forbids ambient nondeterminism inside the deterministic
// pipeline packages: importing math/rand (v1 or v2), and calling
// time.Now or reading the environment. Only internal/rng streams, split
// by name before fan-out, are legal randomness sources there.
var RNGPurity = &Analyzer{
	Name: "rngpurity",
	Doc:  "pipeline packages must draw randomness only from internal/rng and take time/env via config",
	Run:  runRNGPurity,
}

func runRNGPurity(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	if !pipelinePackages[pass.Pkg.Name()] && !pipelinePaths[pass.Pkg.Path()] {
		return nil
	}
	label := pass.Pkg.Name()
	if pipelinePaths[pass.Pkg.Path()] {
		label = pass.Pkg.Path()
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"deterministic pipeline package %q imports %s; use internal/rng streams instead", label, path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if names := forbiddenCalls[pkgName.Imported().Path()]; names[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"call to %s.%s in deterministic pipeline package %q; inject the value through config so runs stay a pure function of the seed",
					pkgName.Imported().Path(), sel.Sel.Name, label)
			}
			return true
		})
	}
	return nil
}
