package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SplitShare flags an *rng.RNG stream that is captured by more than one
// concurrently executed closure within a function. Such closures
// become parallel.Graph stages or pool tasks, and an RNG stream is
// single-consumer state: two concurrent users race, and even without a
// race the interleaving perturbs the stream. The pipeline's convention
// is to derive one child per consumer with SplitNamed *before* the
// fan-out; captures that only call SplitNamed are therefore allowed
// (it reads but never advances the parent).
//
// A closure counts as a concurrent consumer only when it provably
// leaves the sequential path: it is the target of a `go` statement, or
// it is passed at an argument position the flow engine's dispatch
// summaries mark as spawned (handed to a goroutine, stored, or sent
// down a channel inside the callee, transitively). Two closures handed
// to sequential helpers — sort comparators, table.FoldSeq folds,
// deferred cleanups — share nothing and are not flagged.
var SplitShare = &Analyzer{
	Name: "splitshare",
	Doc:  "an rng stream must not be shared across closures/stages; derive SplitNamed children instead",
	Run:  runSplitShare,
}

func runSplitShare(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncForSharedStreams(pass, fd.Body)
		}
	}
	return nil
}

// concurrencyUnit is one potential concurrent consumer: an outermost
// function literal, or the call of a `go` statement that invokes a named
// function (its arguments escape to another goroutine).
type concurrencyUnit struct {
	node ast.Node
}

// streamCapture accumulates, for one RNG variable, which units reference
// it and where the order-sensitive ("consuming") uses are.
type streamCapture struct {
	obj       *types.Var
	units     map[ast.Node]bool
	consuming []token.Pos // positions of non-SplitNamed uses, in source order
}

func checkFuncForSharedStreams(pass *Pass, body *ast.BlockStmt) {
	// Collect function literals that provably run concurrently: `go`
	// targets, and closure arguments at spawn positions per the flow
	// engine's dispatch summaries.
	var units []concurrencyUnit
	spawned := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, isLit := n.Call.Fun.(*ast.FuncLit); isLit {
				spawned[lit] = true
			} else {
				// go f(rng, ...): the arguments escape to another
				// goroutine; the call expression is the unit.
				units = append(units, concurrencyUnit{node: n.Call})
				return false
			}
		case *ast.CallExpr:
			if pass.Flow == nil {
				return true
			}
			for ai, arg := range n.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok || spawned[lit] {
					continue
				}
				if pass.Flow.SpawnsArg(pass.Info, n, ai) {
					spawned[lit] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && spawned[lit] {
			units = append(units, concurrencyUnit{node: lit})
			return false // nested literals count as part of this unit
		}
		return true
	})
	if len(units) < 2 {
		return
	}

	caps := map[*types.Var]*streamCapture{}
	for _, u := range units {
		// Identify idents that appear only as the receiver of a
		// SplitNamed call; those are derivation-only uses.
		derivation := map[*ast.Ident]bool{}
		ast.Inspect(u.node, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "SplitNamed" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				derivation[id] = true
			}
			return true
		})
		lo, hi := u.node.Pos(), u.node.End()
		ast.Inspect(u.node, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v := useObj(pass.Info, id)
			if v == nil || !isRNGStream(v.Type()) || declaredWithin(v, lo, hi) {
				return true
			}
			c := caps[v]
			if c == nil {
				c = &streamCapture{obj: v, units: map[ast.Node]bool{}}
				caps[v] = c
			}
			c.units[u.node] = true
			if !derivation[id] {
				c.consuming = append(c.consuming, id.Pos())
			}
			return true
		})
	}

	shared := make([]*streamCapture, 0, len(caps))
	for _, c := range caps {
		if len(c.units) >= 2 && len(c.consuming) > 0 {
			shared = append(shared, c)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i].obj.Pos() < shared[j].obj.Pos() })
	for _, c := range shared {
		sort.Slice(c.consuming, func(i, j int) bool { return c.consuming[i] < c.consuming[j] })
		pass.Reportf(c.consuming[0],
			"rng stream %q is captured by %d closures/goroutines; derive a child per consumer with SplitNamed before the fan-out",
			c.obj.Name(), len(c.units))
	}
}
