package analysis

import (
	"go/ast"
	"go/types"
)

// CtxProp enforces context plumbing along blocking call chains: a
// function that is reachable from context-aware code (anything taking a
// context.Context or an *http.Request) and that can block — channel
// operations, selects without default, sleeps, sync waits, network or
// subprocess I/O, or a mutex held across a possibly-blocking call —
// must itself accept a context.Context, or cancellation stops
// propagating exactly where the goroutine can get stuck.
//
// Exemption: a function whose body launches goroutines (contains a
// `go` statement) is a fork-join primitive; its channel/WaitGroup
// waits are bounded by its own spawned work, so requiring a ctx there
// would force signatures through every fan-out helper without making
// cancellation more responsive.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc:  "blocking functions reachable from context-aware callers must accept context.Context",
	Run:  runCtxProp,
}

func runCtxProp(pass *Pass) error {
	if pass.Flow == nil {
		return nil
	}
	eng := pass.Flow
	var roots []*types.Func
	for _, fn := range eng.Funcs() {
		s := eng.Summary(fn)
		if s != nil && (s.HasCtx || hasHTTPRequestParam(fn)) {
			roots = append(roots, fn)
		}
	}
	reach := eng.Reachable(roots)
	for _, fn := range eng.Funcs() {
		if fn.Pkg() != pass.Pkg || !reach[fn] {
			continue
		}
		s := eng.Summary(fn)
		if s == nil || s.HasCtx || hasHTTPRequestParam(fn) || len(s.Blocks) == 0 {
			continue
		}
		fi := eng.Info(fn)
		if fi == nil || spawnsGoroutines(fi.Decl.Body) {
			continue
		}
		for _, b := range s.Blocks {
			pass.Reportf(b.Pos,
				"%s blocks (%s) and is reachable from context-aware callers but takes no context.Context; plumb ctx so cancellation reaches the wait",
				fn.Name(), b.Desc)
		}
	}
	return nil
}

// hasHTTPRequestParam reports whether fn takes an *http.Request — the
// handler shape, which carries its context via Request.Context().
func hasHTTPRequestParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		ptr, ok := params.At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}

// spawnsGoroutines reports whether the body contains a `go` statement.
func spawnsGoroutines(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
