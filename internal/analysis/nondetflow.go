package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/analysis/flow"
)

// NondetFlow is the interprocedural taint analyzer: it tracks values
// minted by ambient-nondeterminism sources (wall clock, environment,
// global rand, runtime introspection, pointer-address formatting, map
// iteration order) through assignments, struct fields, and function
// calls, and reports when one reaches an artifact-byte sink — a table
// codec writer, a report table or chart, or a hash/fingerprint input.
// Unlike rngpurity (which bans source calls outright inside pipeline
// packages), nondetflow follows the value: a timestamp captured in a
// cmd package and carried two calls deep into Config.Fingerprint is
// reported at the sink it poisons.
var NondetFlow = &Analyzer{
	Name: "nondetflow",
	Doc:  "nondeterministic values must not flow into artifact bytes (tables, reports, hashes)",
	Run:  runNondetFlow,
}

// nondetSpec is shared with shardpure, which reuses the source
// classifier for "ambient nondeterminism inside a shard closure".
var nondetSpec = &flow.TaintSpec{
	Name:      "nondet",
	IsSource:  nondetSource,
	SinkArgs:  artifactSink,
	Sanitizes: shardCountSanitizer,
}

// shardCountSanitizer declares the fan-out-width parameters of the
// order-free aggregation helpers as sanitized: their contract (ORDER-
// FREE AGGREGATIONS ONLY, enforced by shardpure and the shard-count
// equivalence tests) guarantees results are identical for any shard or
// worker count, so a machine-dependent width (parallel.Workers, i.e.
// GOMAXPROCS) does not make the output machine-dependent.
func shardCountSanitizer(fn *types.Func) uint64 {
	path, name := flow.PathAndName(fn)
	switch {
	case strings.HasSuffix(path, "internal/table"):
		switch name {
		case "ShardFold", "ShardFoldParts", "ShardCollect":
			return 1 << 1 // shards
		}
	case strings.HasSuffix(path, "internal/parallel"):
		switch name {
		case "Map", "MapChunks":
			return 1 << 0 // workers: results land by index, not completion
		}
	}
	return 0
}

// nondetSourceFuncs maps package path -> function name -> description
// for plain source identities.
var nondetSourceFuncs = map[string]map[string]string{
	"time": {
		"Now":   "time.Now",
		"Since": "time.Since",
		"Until": "time.Until",
	},
	"os": {
		"Getenv":    "os.Getenv",
		"LookupEnv": "os.LookupEnv",
		"Environ":   "os.Environ",
		"ExpandEnv": "os.ExpandEnv",
		"Hostname":  "os.Hostname",
		"Getpid":    "os.Getpid",
		"Getwd":     "os.Getwd",
		"TempDir":   "os.TempDir",
	},
	"runtime": {
		"NumGoroutine": "runtime.NumGoroutine",
		"NumCPU":       "runtime.NumCPU",
		"GOMAXPROCS":   "runtime.GOMAXPROCS",
	},
}

// globalRandDraws are the package-level math/rand(/v2) functions that
// actually draw from the process-global source.
var globalRandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"IntN": true, "Uint32": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "N": true,
}

// hashSinkPaths are packages whose inputs become artifact fingerprints.
var hashSinkPaths = map[string]bool{
	"hash":          true, // hash.Hash.Write via interface dispatch
	"hash/fnv":      true,
	"hash/maphash":  true,
	"hash/crc32":    true,
	"hash/crc64":    true,
	"hash/adler32":  true,
	"crypto/sha256": true,
	"crypto/sha1":   true,
	"crypto/md5":    true,
}

// nondetSource classifies a callee (with its call expression, for
// call-shape sources) as a nondeterminism source.
func nondetSource(fn *types.Func, call *ast.CallExpr) (string, bool) {
	path, name := flow.PathAndName(fn)
	if descs := nondetSourceFuncs[path]; descs != nil {
		if d, ok := descs[name]; ok {
			return d, true
		}
	}
	// Package-level math/rand draw functions use the shared global
	// source; *rand.Rand methods are assumed deliberately seeded (and
	// are rngpurity's business inside pipeline packages anyway), and
	// constructors like rand.New/NewSource mint nothing themselves.
	if (path == "math/rand" || path == "math/rand/v2") &&
		recvName(fn) == "" && globalRandDraws[name] {
		return path + "." + name + " (global rand)", true
	}
	// Formatting a pointer renders the allocation address.
	if path == "fmt" && strings.HasSuffix(name, "f") && formatHasPointerVerb(call) {
		return "fmt." + name + " %p (pointer address)", true
	}
	return "", false
}

// formatHasPointerVerb reports whether any constant string argument of
// the call contains a %p verb.
func formatHasPointerVerb(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok || lit.Kind.String() != "STRING" {
			continue
		}
		if strings.Contains(lit.Value, "%p") || strings.Contains(lit.Value, "%#p") {
			return true
		}
	}
	return false
}

// artifactSink classifies calls whose arguments become artifact bytes.
func artifactSink(fn *types.Func, call *ast.CallExpr, info *types.Info) (string, []ast.Expr, bool) {
	path, name := flow.PathAndName(fn)
	recv := recvName(fn)
	switch {
	case hashSinkPaths[path]:
		label := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			label = path[i+1:]
		}
		if recv != "" {
			return "hash input " + label + "." + recv + "." + name, nil, true
		}
		return "hash input " + label + "." + name, nil, true
	case strings.HasSuffix(path, "internal/table"):
		switch {
		case recv == "Writer":
			switch name {
			case "Bytes", "Uvarint", "Varint", "Float64", "String":
				return "table.Writer." + name, nil, true
			}
		case recv == "Builder" && name == "Append":
			return "table.Builder.Append", nil, true
		case recv == "" && (name == "HashRows" || name == "FromSlice" || name == "NewSlice" || name == "Build"):
			return "table." + name, nil, true
		}
	case strings.HasSuffix(path, "internal/report"):
		if !ast.IsExported(name) {
			return "", nil, false
		}
		if recv != "" {
			return "report." + recv + "." + name, nil, true
		}
		return "report." + name, nil, true
	}
	return "", nil, false
}

// recvName returns the bare receiver type name of a method, or "".
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func runNondetFlow(pass *Pass) error {
	if pass.Flow == nil {
		return nil
	}
	for _, fl := range pass.Flow.Taint(nondetSpec) {
		if fl.Fn.Pkg() != pass.Pkg {
			continue
		}
		src := fl.Source.Desc
		if fl.Source.Pos.IsValid() {
			p := pass.Fset.Position(fl.Source.Pos)
			src += " (" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line) + ")"
		}
		pass.Reportf(fl.Pos,
			"nondeterministic value from %s reaches %s; artifact bytes must be a pure function of config and seed",
			src, fl.SinkDesc)
	}
	return nil
}
