package analysis

// All returns the full analyzer suite in a stable order. cmd/rcptlint
// runs exactly this set; fixture tests exercise each member alone.
func All() []*Analyzer {
	return []*Analyzer{
		CtxProp,
		ErrDrop,
		FloatFold,
		MapOrder,
		NondetFlow,
		PanicSafe,
		RNGPurity,
		ShardPure,
		SplitShare,
	}
}

// ByName resolves an analyzer by its Name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
