package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer is exercised against a fixture package holding `// want`
// annotated true positives alongside negative cases that must stay
// clean; analysistest fails on both missed and unexpected findings.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "testdata/src/maporder")
}

func TestRNGPurity(t *testing.T) {
	analysistest.Run(t, analysis.RNGPurity,
		"testdata/src/rngpurity/core", "testdata/src/rngpurity/render",
		"testdata/src/rngpurity/cluster")
}

func TestSplitShare(t *testing.T) {
	analysistest.Run(t, analysis.SplitShare, "testdata/src/splitshare")
}

func TestPanicSafe(t *testing.T) {
	analysistest.Run(t, analysis.PanicSafe,
		"testdata/src/panicsafe/serve", "testdata/src/panicsafe/other",
		"testdata/src/panicsafe/cluster")
}

func TestFloatFold(t *testing.T) {
	analysistest.Run(t, analysis.FloatFold, "testdata/src/floatfold")
}

func TestNondetFlow(t *testing.T) {
	analysistest.Run(t, analysis.NondetFlow, "testdata/src/nondetflow")
}

func TestCtxProp(t *testing.T) {
	analysistest.Run(t, analysis.CtxProp, "testdata/src/ctxprop")
}

func TestShardPure(t *testing.T) {
	analysistest.Run(t, analysis.ShardPure, "testdata/src/shardpure")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop,
		"testdata/src/errdrop/report", "testdata/src/errdrop/other",
		"testdata/src/errdrop/serve", "testdata/src/errdrop/cluster")
}

// TestSuppression drives //rcpt:allow handling end to end: annotated
// lines are silenced (same line and line-above forms), unannotated ones
// still report.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "testdata/src/suppress")
}

// TestStaleAllow audits //rcpt:allow directives end to end: a live
// directive (suppressing a real finding) is not reported, a directive
// covering nothing is stale, and a typoed analyzer name is called out.
func TestStaleAllow(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("testdata/src/stalecheck")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	suite, err := analysis.RunSuite(pkgs, analysis.All(), loader.Loaded()...)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(suite.Findings) != 0 {
		t.Errorf("unexpected findings: %v", suite.Findings)
	}
	if len(suite.Stale) != 2 {
		t.Fatalf("got %d stale findings, want 2: %v", len(suite.Stale), suite.Stale)
	}
	for _, f := range suite.Stale {
		if f.Analyzer != "staleallow" {
			t.Errorf("stale finding analyzer = %q, want staleallow", f.Analyzer)
		}
	}
	if got := suite.Stale[0].Message; !strings.Contains(got, "stale //rcpt:allow maporder") {
		t.Errorf("first stale message = %q, want the stale-directive form", got)
	}
	if got := suite.Stale[1].Message; !strings.Contains(got, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("second stale message = %q, want the unknown-analyzer form", got)
	}
}

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if got := analysis.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if got := analysis.ByName("nosuch"); got != nil {
		t.Errorf("ByName(nosuch) = %v, want nil", got)
	}
}
