package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer is exercised against a fixture package holding `// want`
// annotated true positives alongside negative cases that must stay
// clean; analysistest fails on both missed and unexpected findings.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "testdata/src/maporder")
}

func TestRNGPurity(t *testing.T) {
	analysistest.Run(t, analysis.RNGPurity,
		"testdata/src/rngpurity/core", "testdata/src/rngpurity/render")
}

func TestSplitShare(t *testing.T) {
	analysistest.Run(t, analysis.SplitShare, "testdata/src/splitshare")
}

func TestPanicSafe(t *testing.T) {
	analysistest.Run(t, analysis.PanicSafe,
		"testdata/src/panicsafe/serve", "testdata/src/panicsafe/other")
}

func TestFloatFold(t *testing.T) {
	analysistest.Run(t, analysis.FloatFold, "testdata/src/floatfold")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop,
		"testdata/src/errdrop/report", "testdata/src/errdrop/other",
		"testdata/src/errdrop/serve")
}

// TestSuppression drives //rcpt:allow handling end to end: annotated
// lines are silenced (same line and line-above forms), unannotated ones
// still report.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "testdata/src/suppress")
}

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if got := analysis.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if got := analysis.ByName("nosuch"); got != nil {
		t.Errorf("ByName(nosuch) = %v, want nil", got)
	}
}
