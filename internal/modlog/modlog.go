// Package modlog models software-module-load telemetry (Lmod-style
// "user loaded module X at time T" events): a text log format with a
// strict parser, a synthetic generator driven by the same per-year
// language trends as the trace workload, and aggregation into per-year
// module/language shares. This is the measured-behavior counterpart to
// the survey's self-reported language question, feeding the
// survey-vs-telemetry concordance table (R-T7) and the adoption trend
// figure (R-F1).
package modlog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Event is one module load.
type Event struct {
	Time   int64 // seconds since epoch of the log
	Year   int   // calendar year (generator stamps it; real logs derive it)
	User   string
	Module string // e.g. "python/3.11", "openmpi/4.1"
}

// Validate checks the event.
func (e Event) Validate() error {
	switch {
	case e.Time < 0:
		return fmt.Errorf("modlog: negative time %d", e.Time)
	case e.Year <= 0:
		return fmt.Errorf("modlog: year %d", e.Year)
	case e.User == "":
		return errors.New("modlog: empty user")
	case e.Module == "":
		return errors.New("modlog: empty module")
	case strings.ContainsAny(e.Module, " \t"):
		return fmt.Errorf("modlog: module %q contains whitespace", e.Module)
	case strings.ContainsAny(e.User, " \t"):
		return fmt.Errorf("modlog: user %q contains whitespace", e.User)
	}
	return nil
}

// Name returns the module name without its version ("python/3.11" →
// "python").
func (e Event) Name() string {
	if i := strings.IndexByte(e.Module, '/'); i >= 0 {
		return e.Module[:i]
	}
	return e.Module
}

// Write streams events as "time year user module" lines.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%d %d %s %s\n", e.Time, e.Year, e.User, e.Module); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads the text format, reporting the first malformed line.
func Parse(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("modlog: line %d: %d fields, want 4", line, len(fields))
		}
		t, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("modlog: line %d: time: %w", line, err)
		}
		y, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("modlog: line %d: year: %w", line, err)
		}
		e := Event{Time: t, Year: y, User: fields[2], Module: fields[3]}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("modlog: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("modlog: read: %w", err)
	}
	return out, nil
}

// moduleVersions maps a module name to plausible versions per era; the
// generator picks by year so logs look realistic.
var moduleVersions = map[string][]string{
	"python":   {"2.7", "3.6", "3.9", "3.11"},
	"r":        {"3.2", "4.0", "4.3"},
	"matlab":   {"2011a", "2017b", "2023a"},
	"gcc":      {"4.7", "7.3", "11.2"},
	"intel":    {"12.0", "18.0", "2022.1"},
	"openmpi":  {"1.6", "3.1", "4.1"},
	"cuda":     {"4.0", "9.0", "12.1"},
	"julia":    {"0.6", "1.6", "1.9"},
	"anaconda": {"2.2", "2020.07", "2023.09"},
	"fortran":  {"legacy"},
	"stata":    {"12", "16", "18"},
}

// GeneratorModel parameterizes one year of module-load telemetry.
type GeneratorModel struct {
	Year         int
	Users        int
	LoadsPerUser float64 // Poisson mean per user over the window
	// ModuleShare maps module name -> relative weight.
	ModuleShare map[string]float64
	WindowDays  int
}

// CampusModulesModel returns the per-year module mix, aligned with the
// trace generator's language trend: rising python/cuda/anaconda, falling
// fortran-era toolchains.
func CampusModulesModel(year int) *GeneratorModel {
	t := float64(year-2011) / 13
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lerp := func(a, b float64) float64 { return a + (b-a)*t }
	return &GeneratorModel{
		Year:         year,
		Users:        300,
		LoadsPerUser: 40,
		WindowDays:   30,
		ModuleShare: map[string]float64{
			"python":   lerp(0.10, 0.34),
			"anaconda": lerp(0.00, 0.12),
			"r":        lerp(0.06, 0.08),
			"matlab":   lerp(0.16, 0.06),
			"gcc":      lerp(0.18, 0.12),
			"intel":    lerp(0.16, 0.05),
			"openmpi":  lerp(0.14, 0.08),
			"cuda":     lerp(0.02, 0.11),
			"julia":    lerp(0.00, 0.02),
			"fortran":  lerp(0.16, 0.01),
			"stata":    lerp(0.02, 0.01),
		},
	}
}

// Validate checks the model.
func (m *GeneratorModel) Validate() error {
	if m.Year <= 0 || m.Users <= 0 || m.LoadsPerUser <= 0 || m.WindowDays <= 0 {
		return fmt.Errorf("modlog: invalid generator model %+v", m)
	}
	if len(m.ModuleShare) == 0 {
		return errors.New("modlog: empty module share")
	}
	// Fold weights in sorted-name order so the zero-sum check below is
	// not at the mercy of map iteration order (float addition is not
	// associative; see the maporder lint rule).
	names := make([]string, 0, len(m.ModuleShare))
	for name := range m.ModuleShare {
		names = append(names, name)
	}
	sort.Strings(names)
	sum := 0.0
	for _, name := range names {
		w := m.ModuleShare[name]
		if w < 0 {
			return fmt.Errorf("modlog: module %q has negative weight", name)
		}
		if _, ok := moduleVersions[name]; !ok {
			return fmt.Errorf("modlog: unknown module %q", name)
		}
		sum += w
	}
	if sum <= 0 {
		return errors.New("modlog: module weights sum to zero")
	}
	return nil
}

// Generate produces one year's events sorted by time. Deterministic in r.
func (m *GeneratorModel) Generate(r *rng.RNG) ([]Event, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cat, err := rng.NewCategorical(m.ModuleShare)
	if err != nil {
		return nil, err
	}
	window := int64(m.WindowDays) * 86400
	var events []Event
	for u := 0; u < m.Users; u++ {
		user := fmt.Sprintf("u%04d", u)
		// Each user works from a small personal repertoire of modules
		// drawn from the campus mix; without this, "share of users who
		// loaded X at least once" saturates to 1 for every module.
		repSize := 1 + r.Poisson(1.3)
		repertoire := make([]string, 0, repSize)
		for len(repertoire) < repSize {
			name := cat.Draw(r)
			dup := false
			for _, x := range repertoire {
				if x == name {
					dup = true
					break
				}
			}
			if !dup {
				repertoire = append(repertoire, name)
			}
			if len(repertoire) >= len(m.ModuleShare) {
				break
			}
		}
		n := r.Poisson(m.LoadsPerUser)
		for k := 0; k < n; k++ {
			name := repertoire[r.Intn(len(repertoire))]
			versions := moduleVersions[name]
			// Era-appropriate version: index scales with the year knob.
			vi := int(float64(len(versions)-1) * float64(m.Year-2011) / 13.0)
			if vi < 0 {
				vi = 0
			}
			if vi >= len(versions) {
				vi = len(versions) - 1
			}
			e := Event{
				Time:   int64(r.Uint64n(uint64(window))),
				Year:   m.Year,
				User:   user,
				Module: name + "/" + versions[vi],
			}
			if err := e.Validate(); err != nil {
				return nil, err
			}
			events = append(events, e)
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].Time != events[b].Time {
			return events[a].Time < events[b].Time
		}
		if events[a].User != events[b].User {
			return events[a].User < events[b].User
		}
		return events[a].Module < events[b].Module
	})
	return events, nil
}

// YearShares aggregates events into per-year module-name user shares:
// the fraction of distinct users who loaded each module at least once
// that year. Shares are per-user, not per-load, to match how the survey
// asks "do you use X".
type YearShares struct {
	Year   int
	Users  int
	Shares map[string]float64
}

// AggregateByYear computes YearShares for each year present, sorted
// ascending.
func AggregateByYear(events []Event) []YearShares {
	type key struct {
		year int
		user string
	}
	// Size hints: a synthetic log averages a handful of loads per
	// (year, user) pair, and the event slice bounds the pair count, so
	// hinting from len(events) keeps the hot maps from regrowing while
	// staying O(1) extra memory for small logs.
	pairHint := len(events)/8 + 8
	usersPerYear := make(map[int]map[string]bool, 8)
	loads := make(map[key]map[string]bool, pairHint)
	for _, e := range events {
		if usersPerYear[e.Year] == nil {
			usersPerYear[e.Year] = make(map[string]bool, pairHint)
		}
		usersPerYear[e.Year][e.User] = true
		k := key{e.Year, e.User}
		if loads[k] == nil {
			loads[k] = make(map[string]bool, 8)
		}
		loads[k][e.Name()] = true
	}
	years := make([]int, 0, len(usersPerYear))
	for y := range usersPerYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearShares, 0, len(years))
	for _, y := range years {
		users := usersPerYear[y]
		counts := make(map[string]int, 64)
		for user := range users {
			for name := range loads[key{y, user}] {
				counts[name]++
			}
		}
		shares := make(map[string]float64, len(counts))
		for name, c := range counts {
			shares[name] = float64(c) / float64(len(users))
		}
		out = append(out, YearShares{Year: y, Users: len(users), Shares: shares})
	}
	return out
}

// Series extracts one module's share across years from aggregated data,
// in year order; missing years yield 0.
func Series(agg []YearShares, module string) (years []int, shares []float64) {
	for _, ys := range agg {
		years = append(years, ys.Year)
		shares = append(shares, ys.Shares[module])
	}
	return years, shares
}
