package modlog

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/table"
)

func genEvents(t *testing.T, years ...int) []Event {
	t.Helper()
	var all []Event
	for _, y := range years {
		evs, err := CampusModulesModel(y).Generate(rng.New(11).SplitNamed("modlog-test"))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, evs...)
	}
	return all
}

func TestEventColumnsRoundTrip(t *testing.T) {
	events := genEvents(t, 2024)
	for _, bs := range []int{100, 4096, len(events) + 1} {
		tab, err := table.FromSlice[Event](EventCodec{}, table.Options{BatchSize: bs}, events)
		if err != nil {
			t.Fatal(err)
		}
		got, err := table.Rows[Event](tab)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, events) {
			t.Fatalf("BatchSize=%d: events differ after columnar round trip", bs)
		}
	}
}

func TestEventColumnsSpillRoundTrip(t *testing.T) {
	events := genEvents(t, 2011)
	tab, err := table.FromSlice[Event](EventCodec{}, table.Options{
		BatchSize: 1024, SpillDir: t.TempDir(), Resident: 2,
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := table.Rows[Event](tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatal("events differ after spill round trip")
	}
}

func TestAggregateByYearTableMatchesSliceAcrossShards(t *testing.T) {
	events := genEvents(t, 2011, 2024)
	want := AggregateByYear(events)
	tab, err := table.FromSlice[Event](EventCodec{}, table.Options{BatchSize: 500}, events)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 7} {
		got, err := AggregateByYearTable(tab, shards)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: AggregateByYearTable differs from AggregateByYear", shards)
		}
	}
}

func TestCoLoadsTableMatchesSliceAcrossShards(t *testing.T) {
	events := genEvents(t, 2024)
	want, err := CoLoads(events, 2024)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := table.FromSlice[Event](EventCodec{}, table.Options{BatchSize: 333}, events)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 7} {
		got, err := CoLoadsTable(tab, 2024, shards)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: CoLoadsTable differs from CoLoads", shards)
		}
	}
	if _, err := CoLoadsTable(tab, 2011, 2); err == nil {
		t.Fatal("CoLoadsTable accepted events from the wrong year")
	}
}
