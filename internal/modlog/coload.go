package modlog

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// Co-load analysis: which modules are used together by the same user in
// the same year. Lift > 1 means the pair co-occurs more often than
// independent adoption would predict — e.g. python+cuda signals the
// GPU/ML stack.

// PairAffinity reports one module pair's co-usage.
type PairAffinity struct {
	A, B    string
	UsersA  int
	UsersB  int
	UsersAB int
	Jaccard float64 // |A∩B| / |A∪B|
	Lift    float64 // P(AB) / (P(A)P(B)), over the year's user base
}

// CoLoads computes co-usage for every module pair in one year's events.
// Pairs are returned sorted by descending lift, ties by Jaccard then
// name. Events from other years are an error (callers slice per year).
func CoLoads(events []Event, year int) ([]PairAffinity, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("modlog: no events")
	}
	users := map[string]map[string]bool{} // user -> set of module names
	for _, e := range events {
		if e.Year != year {
			return nil, fmt.Errorf("modlog: event for year %d in CoLoads(%d)", e.Year, year)
		}
		if users[e.User] == nil {
			users[e.User] = map[string]bool{}
		}
		users[e.User][e.Name()] = true
	}
	return pairAffinities(users), nil
}

// pairAffinities computes the pair statistics from user→module sets,
// the shared core of CoLoads and CoLoadsTable. The per-user iteration
// is map-ordered but every derived quantity is an integer count, so the
// result (after the final total-order sort) is deterministic.
func pairAffinities(users map[string]map[string]bool) []PairAffinity {
	totalUsers := len(users)
	moduleUsers := map[string]int{}
	pairUsers := map[[2]string]int{}
	for _, mods := range users {
		names := make([]string, 0, len(mods))
		for m := range mods {
			names = append(names, m)
		}
		sort.Strings(names)
		for i, a := range names {
			moduleUsers[a]++
			for _, b := range names[i+1:] {
				pairUsers[[2]string{a, b}]++
			}
		}
	}
	out := make([]PairAffinity, 0, len(pairUsers))
	n := float64(totalUsers)
	for pair, ab := range pairUsers {
		ua, ub := moduleUsers[pair[0]], moduleUsers[pair[1]]
		union := ua + ub - ab
		pa := float64(ua) / n
		pb := float64(ub) / n
		pab := float64(ab) / n
		aff := PairAffinity{
			A: pair[0], B: pair[1],
			UsersA: ua, UsersB: ub, UsersAB: ab,
			Jaccard: float64(ab) / float64(union),
		}
		if pa > 0 && pb > 0 {
			aff.Lift = pab / (pa * pb)
		}
		out = append(out, aff)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lift != out[j].Lift {
			return out[i].Lift > out[j].Lift
		}
		if out[i].Jaccard != out[j].Jaccard {
			return out[i].Jaccard > out[j].Jaccard
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// CoLoadsTable is the streaming, shard-parallel equivalent of CoLoads:
// the user→module sets are built by order-free set union across shard
// scanners (merged in ascending shard order), then scored by the same
// pair-affinity core. Identical output for any shard count.
func CoLoadsTable(t EventTable, year, shards int) ([]PairAffinity, error) {
	if t.Len(table.Exact) == 0 {
		return nil, fmt.Errorf("modlog: no events")
	}
	users, err := table.ShardFold[Event](t, shards,
		func() map[string]map[string]bool { return map[string]map[string]bool{} },
		func(m map[string]map[string]bool, e Event) map[string]map[string]bool {
			if e.Year != year {
				panic(fmt.Sprintf("modlog: event for year %d in CoLoadsTable(%d)", e.Year, year))
			}
			if m[e.User] == nil {
				m[e.User] = map[string]bool{}
			}
			m[e.User][e.Name()] = true
			return m
		},
		func(a, b map[string]map[string]bool) map[string]map[string]bool {
			for u, mods := range b {
				if a[u] == nil {
					a[u] = mods
					continue
				}
				for m := range mods {
					a[u][m] = true
				}
			}
			return a
		})
	if err != nil {
		return nil, err
	}
	return pairAffinities(users), nil
}

// TopPairs returns the k highest-lift pairs with at least minUsers
// co-users (filtering out noise pairs).
func TopPairs(pairs []PairAffinity, k, minUsers int) []PairAffinity {
	out := make([]PairAffinity, 0, k)
	for _, p := range pairs {
		if p.UsersAB < minUsers {
			continue
		}
		out = append(out, p)
		if len(out) == k {
			break
		}
	}
	return out
}
