package modlog

import (
	"testing"

	"repro/internal/rng"
)

func TestCoLoadsHandComputed(t *testing.T) {
	events := []Event{
		{Time: 1, Year: 2024, User: "a", Module: "python/3.11"},
		{Time: 2, Year: 2024, User: "a", Module: "cuda/12.1"},
		{Time: 3, Year: 2024, User: "b", Module: "python/3.11"},
		{Time: 4, Year: 2024, User: "b", Module: "cuda/12.1"},
		{Time: 5, Year: 2024, User: "c", Module: "python/3.11"},
		{Time: 6, Year: 2024, User: "d", Module: "matlab/2023a"},
	}
	pairs, err := CoLoads(events, 2024)
	if err != nil {
		t.Fatal(err)
	}
	var pc *PairAffinity
	for i := range pairs {
		if pairs[i].A == "cuda" && pairs[i].B == "python" {
			pc = &pairs[i]
		}
	}
	if pc == nil {
		t.Fatalf("cuda/python pair missing: %+v", pairs)
	}
	// 4 users total; python 3, cuda 2, both 2.
	if pc.UsersA != 2 || pc.UsersB != 3 || pc.UsersAB != 2 {
		t.Fatalf("counts %+v", pc)
	}
	if pc.Jaccard != 2.0/3.0 {
		t.Fatalf("jaccard %g", pc.Jaccard)
	}
	// lift = (2/4) / ((2/4)(3/4)) = 4/3.
	if pc.Lift < 1.33 || pc.Lift > 1.34 {
		t.Fatalf("lift %g", pc.Lift)
	}
}

func TestCoLoadsRejectsWrongYear(t *testing.T) {
	events := []Event{{Time: 1, Year: 2011, User: "a", Module: "python/2.7"}}
	if _, err := CoLoads(events, 2024); err == nil {
		t.Fatal("wrong-year events accepted")
	}
	if _, err := CoLoads(nil, 2024); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestCoLoadsSortedAndTopPairs(t *testing.T) {
	ev, err := CampusModulesModel(2024).Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := CoLoads(ev, 2024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Lift > pairs[i-1].Lift+1e-12 {
			t.Fatal("pairs not sorted by lift")
		}
	}
	top := TopPairs(pairs, 5, 3)
	if len(top) > 5 {
		t.Fatalf("%d pairs", len(top))
	}
	for _, p := range top {
		if p.UsersAB < 3 {
			t.Fatalf("minUsers filter failed: %+v", p)
		}
	}
}
