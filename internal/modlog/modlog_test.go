package modlog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEventValidate(t *testing.T) {
	ok := Event{Time: 10, Year: 2020, User: "u1", Module: "python/3.9"}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Event{
		{Time: -1, Year: 2020, User: "u", Module: "m"},
		{Time: 0, Year: 0, User: "u", Module: "m"},
		{Time: 0, Year: 2020, User: "", Module: "m"},
		{Time: 0, Year: 2020, User: "u", Module: ""},
		{Time: 0, Year: 2020, User: "u", Module: "py thon"},
		{Time: 0, Year: 2020, User: "u u", Module: "m"},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Fatalf("bad event %d accepted", i)
		}
	}
}

func TestEventName(t *testing.T) {
	if (Event{Module: "python/3.9"}).Name() != "python" {
		t.Fatal("versioned name")
	}
	if (Event{Module: "fortran"}).Name() != "fortran" {
		t.Fatal("unversioned name")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 5, Year: 2011, User: "alice", Module: "matlab/2011a"},
		{Time: 9, Year: 2024, User: "bob", Module: "python/3.11"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != events[0] || got[1] != events[1] {
		t.Fatalf("round trip %v", got)
	}
}

func TestParseFailureInjection(t *testing.T) {
	cases := []string{
		"1 2020 u\n",         // too few fields
		"x 2020 u m\n",       // bad time
		"1 twenty u m\n",     // bad year
		"-4 2020 u m\n",      // negative time
		"1 2020 u m extra\n", // too many fields
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Blank lines are fine; empty input yields no events.
	got, err := Parse(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("blank input: %v %v", got, err)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Event{{Time: 0, Year: 0, User: "u", Module: "m"}}); err == nil {
		t.Fatal("invalid event written")
	}
}

func TestModelValidate(t *testing.T) {
	if err := CampusModulesModel(2024).Validate(); err != nil {
		t.Fatal(err)
	}
	m := CampusModulesModel(2024)
	m.ModuleShare["nonexistent-module"] = 0.5
	if err := m.Validate(); err == nil {
		t.Fatal("unknown module accepted")
	}
	m = CampusModulesModel(2024)
	m.Users = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero users accepted")
	}
	m = CampusModulesModel(2024)
	m.ModuleShare = map[string]float64{"python": -1}
	if err := m.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestGenerateSortedAndValid(t *testing.T) {
	m := CampusModulesModel(2020)
	events, err := m.Generate(rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 5000 {
		t.Fatalf("only %d events", len(events))
	}
	var prev int64 = -1
	for _, e := range events {
		if err := e.Validate(); err != nil {
			t.Fatal(err)
		}
		if e.Time < prev {
			t.Fatal("not sorted")
		}
		prev = e.Time
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := CampusModulesModel(2015)
	a, _ := m.Generate(rng.New(8))
	b, _ := m.Generate(rng.New(8))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestVersionsTrackEra(t *testing.T) {
	old, _ := CampusModulesModel(2011).Generate(rng.New(9))
	recent, _ := CampusModulesModel(2024).Generate(rng.New(9))
	hasModule := func(events []Event, mod string) bool {
		for _, e := range events {
			if e.Module == mod {
				return true
			}
		}
		return false
	}
	if hasModule(old, "python/3.11") {
		t.Fatal("2011 log contains python 3.11")
	}
	if hasModule(recent, "python/2.7") {
		t.Fatal("2024 log contains python 2.7")
	}
}

func TestAggregateByYear(t *testing.T) {
	events := []Event{
		{Time: 1, Year: 2011, User: "a", Module: "python/2.7"},
		{Time: 2, Year: 2011, User: "a", Module: "python/2.7"}, // repeat: same user
		{Time: 3, Year: 2011, User: "b", Module: "matlab/2011a"},
		{Time: 4, Year: 2024, User: "a", Module: "python/3.11"},
		{Time: 5, Year: 2024, User: "b", Module: "python/3.11"},
	}
	agg := AggregateByYear(events)
	if len(agg) != 2 || agg[0].Year != 2011 || agg[1].Year != 2024 {
		t.Fatalf("agg %v", agg)
	}
	if agg[0].Users != 2 || agg[0].Shares["python"] != 0.5 || agg[0].Shares["matlab"] != 0.5 {
		t.Fatalf("2011 %v", agg[0])
	}
	if agg[1].Shares["python"] != 1.0 {
		t.Fatalf("2024 %v", agg[1])
	}
	years, shares := Series(agg, "python")
	if len(years) != 2 || shares[0] != 0.5 || shares[1] != 1.0 {
		t.Fatalf("series %v %v", years, shares)
	}
	_, matlab := Series(agg, "matlab")
	if matlab[1] != 0 {
		t.Fatal("missing year should be 0")
	}
}

func TestPythonRisesAcrossYears(t *testing.T) {
	r := rng.New(12)
	var all []Event
	for _, y := range []int{2011, 2017, 2024} {
		ev, err := CampusModulesModel(y).Generate(r.SplitNamed(string(rune('a' + y - 2011))))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ev...)
	}
	agg := AggregateByYear(all)
	_, py := Series(agg, "python")
	if !(py[0] < py[1] && py[1] < py[2]) {
		t.Fatalf("python share not rising: %v", py)
	}
	_, ftn := Series(agg, "fortran")
	if ftn[2] >= ftn[0] {
		t.Fatalf("fortran share not falling: %v", ftn)
	}
	_, cuda := Series(agg, "cuda")
	if cuda[2] <= cuda[0] {
		t.Fatalf("cuda share not rising: %v", cuda)
	}
}

// Property: round trip is identity for valid events.
func TestQuickRoundTrip(t *testing.T) {
	f := func(tRaw uint32, yRaw, uRaw, mRaw uint8) bool {
		mods := []string{"python/3.9", "gcc/7.3", "cuda/12.1", "fortran"}
		e := Event{
			Time:   int64(tRaw),
			Year:   int(yRaw%30) + 2000,
			User:   "u" + string(rune('a'+uRaw%26)),
			Module: mods[mRaw%4],
		}
		var buf bytes.Buffer
		if err := Write(&buf, []Event{e}); err != nil {
			return false
		}
		got, err := Parse(&buf)
		return err == nil && len(got) == 1 && got[0] == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
