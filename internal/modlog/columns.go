package modlog

import (
	"sort"

	"repro/internal/table"
)

// EventColumns is the struct-of-arrays batch form of []Event: times
// delta-encoded (the log is time-sorted), users and modules
// dictionary-encoded.
type EventColumns struct {
	times    []int64
	years    []int32
	users    []uint32
	modules  []uint32
	userDict table.Dict
	modDict  table.Dict
}

// Append implements table.Columns.
func (c *EventColumns) Append(e Event) {
	c.times = append(c.times, e.Time)
	c.years = append(c.years, int32(e.Year))
	c.users = append(c.users, c.userDict.Code(e.User))
	c.modules = append(c.modules, c.modDict.Code(e.Module))
}

// Len implements table.Columns.
func (c *EventColumns) Len() int { return len(c.times) }

// Row implements table.Columns.
func (c *EventColumns) Row(i int) Event {
	return Event{
		Time:   c.times[i],
		Year:   int(c.years[i]),
		User:   c.userDict.Value(c.users[i]),
		Module: c.modDict.Value(c.modules[i]),
	}
}

// Reset implements table.Columns.
func (c *EventColumns) Reset() {
	c.times, c.years = c.times[:0], c.years[:0]
	c.users, c.modules = c.users[:0], c.modules[:0]
	c.userDict.Reset()
	c.modDict.Reset()
}

// EncodeTo implements table.Columns.
func (c *EventColumns) EncodeTo(w *table.Writer) error {
	c.userDict.EncodeTo(w)
	c.modDict.EncodeTo(w)
	w.Uvarint(uint64(len(c.times)))
	prev := int64(0)
	for i := range c.times {
		w.Varint(c.times[i] - prev)
		prev = c.times[i]
		w.Varint(int64(c.years[i]))
		w.Uvarint(uint64(c.users[i]))
		w.Uvarint(uint64(c.modules[i]))
	}
	return w.Err()
}

// DecodeFrom implements table.Columns.
func (c *EventColumns) DecodeFrom(r *table.Reader) error {
	c.Reset()
	c.userDict.DecodeFrom(r)
	c.modDict.DecodeFrom(r)
	n := r.Uvarint()
	prev := int64(0)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		prev += r.Varint()
		c.times = append(c.times, prev)
		c.years = append(c.years, int32(r.Varint()))
		c.users = append(c.users, uint32(r.Uvarint()))
		c.modules = append(c.modules, uint32(r.Uvarint()))
	}
	return r.Err()
}

// MemBytes implements table.Columns.
func (c *EventColumns) MemBytes() int {
	return len(c.times)*(8+4+4+4) + c.userDict.MemBytes() + c.modDict.MemBytes()
}

// EventCodec binds Event to its columnar form.
type EventCodec struct{}

// NewColumns implements table.Codec.
func (EventCodec) NewColumns() table.Columns[Event] { return &EventColumns{} }

// HashRow implements table.Codec.
func (EventCodec) HashRow(e Event) uint64 {
	h := table.HashInit()
	h = table.HashInt64(h, e.Time)
	h = table.HashInt64(h, int64(e.Year))
	h = table.HashString(h, e.User)
	h = table.HashString(h, e.Module)
	return h
}

// EventTable is the streaming form of a module-load log.
type EventTable = table.Table[Event]

// AggregateByYearTable is the shard-parallel, streaming equivalent of
// AggregateByYear. The aggregation is pure set union — (year, user) →
// module sets — so it is order-free: per-shard partials merge by set
// union in ascending shard order, and the final shares are computed
// from the merged sets exactly as the slice version does. Output is
// identical for any shard count (pinned by tests).
func AggregateByYearTable(t EventTable, shards int) ([]YearShares, error) {
	type key struct {
		year int
		user string
	}
	type partial struct {
		usersPerYear map[int]map[string]bool
		loads        map[key]map[string]bool
	}
	merged, err := table.ShardFold[Event](t, shards,
		func() *partial {
			return &partial{
				usersPerYear: map[int]map[string]bool{},
				loads:        map[key]map[string]bool{},
			}
		},
		func(p *partial, e Event) *partial {
			if p.usersPerYear[e.Year] == nil {
				p.usersPerYear[e.Year] = map[string]bool{}
			}
			p.usersPerYear[e.Year][e.User] = true
			k := key{e.Year, e.User}
			if p.loads[k] == nil {
				p.loads[k] = map[string]bool{}
			}
			p.loads[k][e.Name()] = true
			return p
		},
		func(a, b *partial) *partial {
			for y, users := range b.usersPerYear {
				if a.usersPerYear[y] == nil {
					a.usersPerYear[y] = users
					continue
				}
				for u := range users {
					a.usersPerYear[y][u] = true
				}
			}
			for k, mods := range b.loads {
				if a.loads[k] == nil {
					a.loads[k] = mods
					continue
				}
				for m := range mods {
					a.loads[k][m] = true
				}
			}
			return a
		})
	if err != nil {
		return nil, err
	}
	years := make([]int, 0, len(merged.usersPerYear))
	for y := range merged.usersPerYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearShares, 0, len(years))
	for _, y := range years {
		users := merged.usersPerYear[y]
		counts := make(map[string]int, 64)
		for user := range users {
			for name := range merged.loads[key{y, user}] {
				counts[name]++
			}
		}
		shares := make(map[string]float64, len(counts))
		for name, c := range counts {
			shares[name] = float64(c) / float64(len(users))
		}
		out = append(out, YearShares{Year: y, Users: len(users), Shares: shares})
	}
	return out, nil
}
