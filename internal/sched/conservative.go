package sched

import (
	"math"
	"sort"

	"repro/internal/trace"
)

// Conservative backfill gives every queued job (up to bfDepth) a
// reservation against a limit-based resource-availability profile; a
// job starts now only if its reservation is now. Unlike EASY, no job's
// reservation can be delayed by a later backfill, at the cost of more
// bookkeeping and fewer backfill opportunities.

// bfDepth caps how many queued jobs receive reservations per scheduling
// pass, mirroring Slurm's bf_max_job_test; jobs beyond the cap simply
// wait for the next pass.
const bfDepth = 128

// need is a resource demand or availability vector.
type need struct {
	cpu     int // cpu-partition cores
	gpuCore int // gpu-partition cores
	gpu     int // gpus
}

func needOf(j trace.Job) need {
	if j.Partition == "gpu" {
		return need{gpuCore: j.Cores(), gpu: j.GPUs}
	}
	return need{cpu: j.Cores()}
}

func (n need) fitsIn(avail need) bool {
	return n.cpu <= avail.cpu && n.gpuCore <= avail.gpuCore && n.gpu <= avail.gpu
}

// profile tracks free resources over future time as a step function.
type profile struct {
	times []int64 // strictly increasing; times[0] == now
	free  []need  // free resources in [times[i], times[i+1])
}

// newProfile builds the availability profile from current free
// resources and the limit-based release times of running jobs.
func (s *sim) newProfile() *profile {
	type release struct {
		t int64
		n need
	}
	var rels []release
	for _, e := range s.running {
		startT := e.end - e.job.Elapsed
		rels = append(rels, release{t: startT + e.job.Limit, n: needOf(e.job)})
	}
	sort.Slice(rels, func(a, b int) bool { return rels[a].t < rels[b].t })
	p := &profile{
		times: []int64{s.now},
		free:  []need{{cpu: s.cpuFree, gpuCore: s.gpuCore, gpu: s.gpuFree}},
	}
	for _, r := range rels {
		last := p.free[len(p.free)-1]
		next := need{cpu: last.cpu + r.n.cpu, gpuCore: last.gpuCore + r.n.gpuCore, gpu: last.gpu + r.n.gpu}
		if r.t <= p.times[len(p.times)-1] {
			// Release at (or before) the current step start: merge.
			p.free[len(p.free)-1] = next
			continue
		}
		p.times = append(p.times, r.t)
		p.free = append(p.free, next)
	}
	return p
}

// earliestFit returns the earliest time >= now at which n is available
// continuously for duration seconds.
func (p *profile) earliestFit(n need, duration int64) int64 {
	for i := range p.times {
		start := p.times[i]
		if !n.fitsIn(p.free[i]) {
			continue
		}
		// Check the window [start, start+duration) stays feasible.
		end := start + duration
		ok := true
		for j := i + 1; j < len(p.times) && p.times[j] < end; j++ {
			if !n.fitsIn(p.free[j]) {
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	// After the last event everything running has released; the final
	// step is the steady state and must fit any pre-validated job.
	return p.times[len(p.times)-1]
}

// reserve subtracts n from the profile over [start, start+duration),
// inserting step boundaries as needed.
func (p *profile) reserve(n need, start, duration int64) {
	end := start + duration
	p.ensureBoundary(start)
	p.ensureBoundary(end)
	for i := range p.times {
		if p.times[i] >= start && p.times[i] < end {
			p.free[i].cpu -= n.cpu
			p.free[i].gpuCore -= n.gpuCore
			p.free[i].gpu -= n.gpu
		}
	}
}

// ensureBoundary splits the step containing t so t is a step start.
func (p *profile) ensureBoundary(t int64) {
	if t <= p.times[0] {
		return
	}
	idx := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= t })
	if idx < len(p.times) && p.times[idx] == t {
		return
	}
	// Insert at idx, copying the preceding step's availability.
	p.times = append(p.times, 0)
	p.free = append(p.free, need{})
	copy(p.times[idx+1:], p.times[idx:])
	copy(p.free[idx+1:], p.free[idx:])
	p.times[idx] = t
	p.free[idx] = p.free[idx-1]
}

// scheduleConservative runs one conservative-backfill pass: walk the
// queue in priority order, give each of the first bfDepth jobs a
// reservation, and start those whose reservation is now.
func (s *sim) scheduleConservative() {
	for {
		order := s.order()
		if len(order) == 0 {
			return
		}
		p := s.newProfile()
		startedOne := false
		depth := len(order)
		if depth > bfDepth {
			depth = bfDepth
		}
		for qi := 0; qi < depth; qi++ {
			q := order[qi]
			n := needOf(q.job)
			start := p.earliestFit(n, q.job.Limit)
			if start == s.now && s.fits(q.job) {
				s.start(q)
				if qi > 0 {
					s.backfills++
				}
				startedOne = true
				break // state changed; rebuild the profile
			}
			p.reserve(n, start, q.job.Limit)
		}
		if !startedOne {
			return
		}
	}
}

// jainFairness computes Jain's index over per-user mean bounded
// slowdown: (Σx)² / (n Σx²), in (0, 1].
func jainFairness(results []JobResult) float64 {
	const tau = 10.0
	perUser := map[string][2]float64{} // sum slowdown, count
	for _, r := range results {
		run := float64(r.Job.Elapsed)
		s := (float64(r.Wait) + run) / math.Max(run, tau)
		if s < 1 {
			s = 1
		}
		agg := perUser[r.Job.User]
		agg[0] += s
		agg[1]++
		perUser[r.Job.User] = agg
	}
	if len(perUser) == 0 {
		return 0
	}
	// Accumulate in sorted user order: float addition is not
	// associative, so summing in (randomized) map order would make the
	// index differ in its last bits from run to run — breaking the
	// byte-identical artifact contract the pipeline promises.
	users := make([]string, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Strings(users)
	var sum, sumsq float64
	for _, u := range users {
		agg := perUser[u]
		mean := agg[0] / agg[1]
		sum += mean
		sumsq += mean * mean
	}
	n := float64(len(perUser))
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (n * sumsq)
}

// meanBoundedSlowdown computes the geometric mean of
// max(1, (wait+run)/max(run, tau)) with tau=10s, the standard
// scheduling-paper responsiveness metric.
func meanBoundedSlowdown(results []JobResult) float64 {
	const tau = 10.0
	if len(results) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, r := range results {
		run := float64(r.Job.Elapsed)
		s := (float64(r.Wait) + run) / math.Max(run, tau)
		if s < 1 {
			s = 1
		}
		sumLog += math.Log(s)
	}
	return math.Exp(sumLog / float64(len(results)))
}
