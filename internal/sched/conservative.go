package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Conservative backfill gives every queued job (up to bfDepth) a
// reservation against a limit-based resource-availability profile; a
// job starts now only if its reservation is now. Unlike EASY, no job's
// reservation can be delayed by a later backfill, at the cost of more
// bookkeeping and fewer backfill opportunities.
//
// The hot path is incremental (DESIGN.md "Scheduler performance"): the
// base profile is rebuilt from the sorted release list at most once per
// simulation event and updated in place as jobs start; each reservation
// pass works on a scratch copy, so nothing here allocates in steady
// state. The pre-incremental implementation survives as the reference
// oracle in oracle.go.

// bfDepth caps how many queued jobs receive reservations per scheduling
// pass, mirroring Slurm's bf_max_job_test; jobs beyond the cap simply
// wait for the next pass.
const bfDepth = 128

// need is a resource demand or availability vector.
type need struct {
	cpu     int // cpu-partition cores
	gpuCore int // gpu-partition cores
	gpu     int // gpus
}

func needOf(j trace.Job) need {
	if j.Partition == "gpu" {
		return need{gpuCore: j.Cores(), gpu: j.GPUs}
	}
	return need{cpu: j.Cores()}
}

func (n need) fitsIn(avail need) bool {
	return n.cpu <= avail.cpu && n.gpuCore <= avail.gpuCore && n.gpu <= avail.gpu
}

// profile tracks free resources over future time as a step function.
// The three resource lanes are stored as parallel arrays (struct of
// arrays) sharing the times axis: feasibility scans for a cpu-partition
// job read only the cpu lane, and gpu-partition scans only the two gpu
// lanes. That specialization is sound because availability is never
// negative (conservation invariants on live resources; reservations
// only land in windows verified feasible), so a zero demand trivially
// fits every step of the lanes it does not touch.
type profile struct {
	times   []int64 // strictly increasing; times[0] == now
	cpu     []int32 // free cpu-partition cores in [times[i], times[i+1])
	gpuCore []int32 // free gpu-partition cores
	gpu     []int32 // free gpus
}

// copyFrom makes p an independent copy of src, reusing p's backing
// arrays.
func (p *profile) copyFrom(src *profile) {
	p.times = append(p.times[:0], src.times...)
	p.cpu = append(p.cpu[:0], src.cpu...)
	p.gpuCore = append(p.gpuCore[:0], src.gpuCore...)
	p.gpu = append(p.gpu[:0], src.gpu...)
}

// rebuildBase reconstructs the availability profile for the current
// instant from free resources and the incrementally maintained release
// list. Unlike the oracle's newProfileNaive this does not sort (the
// release list is kept ordered on job start/finish) and reuses the
// base profile's backing arrays, so a rebuild is one linear merge.
func (s *sim) rebuildBase() {
	p := &s.base
	p.times = append(p.times[:0], s.now)
	p.cpu = append(p.cpu[:0], int32(s.cpuFree))
	p.gpuCore = append(p.gpuCore[:0], int32(s.gpuCore))
	p.gpu = append(p.gpu[:0], int32(s.gpuFree))
	for i := range s.releases {
		r := &s.releases[i]
		last := len(p.times) - 1
		if r.t > p.times[last] {
			// New step, carrying the previous availability forward.
			p.times = append(p.times, r.t)
			p.cpu = append(p.cpu, p.cpu[last])
			p.gpuCore = append(p.gpuCore, p.gpuCore[last])
			p.gpu = append(p.gpu, p.gpu[last])
			last++
		}
		// Release at (or before) the current step start: merge.
		p.cpu[last] += int32(r.n.cpu)
		p.gpuCore[last] += int32(r.n.gpuCore)
		p.gpu[last] += int32(r.n.gpu)
	}
	s.baseOK = true
}

// earliestFit returns the earliest time >= now at which n is available
// continuously for duration seconds. A single cursor tracks the first
// step after the most recent infeasible one, so the scan is linear in
// profile steps instead of the oracle's nested rescan, and only the
// lanes the job's partition uses are read. ok is false when even the
// final (steady-state) step cannot hold n — the caller must surface
// ErrNeverFits rather than fabricate a reservation.
func (p *profile) earliestFit(n need, duration int64) (start int64, ok bool) {
	if n.gpuCore == 0 && n.gpu == 0 {
		return p.earliestFitLane(p.cpu, nil, int32(n.cpu), 0, duration)
	}
	return p.earliestFitLane(p.gpuCore, p.gpu, int32(n.gpuCore), int32(n.gpu), duration)
}

// earliestFitLane runs the cursor scan over one lane (b nil) or two.
func (p *profile) earliestFitLane(a, b []int32, na, nb int32, duration int64) (int64, bool) {
	i := 0 // candidate start step: first feasible step after the last infeasible one
	last := len(p.times) - 1
	for j := 0; j <= last; j++ {
		if na > a[j] || (b != nil && nb > b[j]) {
			i = j + 1
			continue
		}
		if j == last {
			// Feasible through the final step, which extends forever.
			return p.times[i], true
		}
		if p.times[j+1] >= p.times[i]+duration {
			// Steps i..j cover [times[i], times[i]+duration) entirely.
			return p.times[i], true
		}
	}
	return 0, false
}

// reserve subtracts n from the profile over [start, start+duration).
// Both step boundaries are resolved (inserting at most one step each)
// and the subtraction touches only the covered step range of the lanes
// the job actually uses, instead of the oracle's two independent
// insertions plus full-profile scan.
func (p *profile) reserve(n need, start, duration int64) {
	si := p.boundary(start)
	ei := p.boundary(start + duration)
	if n.gpuCore == 0 && n.gpu == 0 {
		lane := p.cpu[si:ei]
		for i := range lane {
			lane[i] -= int32(n.cpu)
		}
		return
	}
	gc, g := p.gpuCore[si:ei], p.gpu[si:ei]
	for i := range gc {
		gc[i] -= int32(n.gpuCore)
		g[i] -= int32(n.gpu)
	}
}

// boundary returns the index of the step starting at t, splitting the
// step containing t if needed. Times at or before the profile start
// map to step 0.
func (p *profile) boundary(t int64) int {
	if t <= p.times[0] {
		return 0
	}
	idx := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= t })
	if idx < len(p.times) && p.times[idx] == t {
		return idx
	}
	// Insert at idx, copying the preceding step's availability.
	p.times = append(p.times, 0)
	p.cpu = append(p.cpu, 0)
	p.gpuCore = append(p.gpuCore, 0)
	p.gpu = append(p.gpu, 0)
	copy(p.times[idx+1:], p.times[idx:])
	copy(p.cpu[idx+1:], p.cpu[idx:])
	copy(p.gpuCore[idx+1:], p.gpuCore[idx:])
	copy(p.gpu[idx+1:], p.gpu[idx:])
	p.times[idx] = t
	p.cpu[idx] = p.cpu[idx-1]
	p.gpuCore[idx] = p.gpuCore[idx-1]
	p.gpu[idx] = p.gpu[idx-1]
	return idx
}

// scheduleConservative runs one conservative-backfill pass: walk the
// queue in priority order, give each of the first bfDepth jobs a
// reservation, and start those whose reservation is now. Each pass
// works on a scratch copy of the base profile; when a job starts, the
// base is updated in place (a start is exactly a reservation over the
// job's limit window) rather than rebuilt, which is what makes the
// restarted pass cheap.
func (s *sim) scheduleConservative() error {
	for {
		order := s.order()
		if len(order) == 0 {
			return nil
		}
		if !s.baseOK {
			s.rebuildBase()
		}
		p := &s.work
		p.copyFrom(&s.base)
		startedOne := false
		depth := len(order)
		if depth > bfDepth {
			depth = bfDepth
		}
		for qi := 0; qi < depth; qi++ {
			q := order[qi]
			n := needOf(q.job)
			start, ok := p.earliestFit(n, q.job.Limit)
			if !ok {
				return fmt.Errorf("sched: job %d (%d cores / %d gpus on %q) cannot be reserved: %w",
					q.job.ID, q.job.Cores(), q.job.GPUs, q.job.Partition, ErrNeverFits)
			}
			if start == s.now && s.fits(q.job) {
				s.start(q)
				s.base.reserve(n, s.now, q.job.Limit)
				if qi > 0 {
					s.backfills++
				}
				startedOne = true
				break // state changed; restart the pass on the updated base
			}
			p.reserve(n, start, q.job.Limit)
		}
		if !startedOne {
			return nil
		}
	}
}

// jainFairness computes Jain's index over per-user mean bounded
// slowdown: (Σx)² / (n Σx²), in (0, 1]. userHint sizes the per-user
// accumulator map up front (the simulator knows its user count), so
// the render path does not regrow it.
func jainFairness(results []JobResult, userHint int) float64 {
	const tau = 10.0
	if userHint < 8 {
		userHint = 8
	}
	perUser := make(map[string][2]float64, userHint) // sum slowdown, count
	for _, r := range results {
		run := float64(r.Job.Elapsed)
		s := (float64(r.Wait) + run) / math.Max(run, tau)
		if s < 1 {
			s = 1
		}
		agg := perUser[r.Job.User]
		agg[0] += s
		agg[1]++
		perUser[r.Job.User] = agg
	}
	if len(perUser) == 0 {
		return 0
	}
	// Accumulate in sorted user order: float addition is not
	// associative, so summing in (randomized) map order would make the
	// index differ in its last bits from run to run — breaking the
	// byte-identical artifact contract the pipeline promises.
	users := make([]string, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Strings(users)
	var sum, sumsq float64
	for _, u := range users {
		agg := perUser[u]
		mean := agg[0] / agg[1]
		sum += mean
		sumsq += mean * mean
	}
	n := float64(len(perUser))
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (n * sumsq)
}

// meanBoundedSlowdown computes the geometric mean of
// max(1, (wait+run)/max(run, tau)) with tau=10s, the standard
// scheduling-paper responsiveness metric.
func meanBoundedSlowdown(results []JobResult) float64 {
	const tau = 10.0
	if len(results) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, r := range results {
		run := float64(r.Job.Elapsed)
		s := (float64(r.Wait) + run) / math.Max(run, tau)
		if s < 1 {
			s = 1
		}
		sumLog += math.Log(s)
	}
	return math.Exp(sumLog / float64(len(results)))
}
