package sched

// Reference oracle: the naive scheduler implementation that rebuilds
// the availability profile from scratch on every started job, re-sorts
// the queue on every pass, and allocates fresh profile/order slices
// per call. It is kept verbatim (modulo the interned-usage storage the
// whole package shares) as the semantic ground truth for the optimized
// incremental simulator in sched.go/conservative.go: the differential
// property test in oracle_test.go asserts both produce identical
// Results across seeded random traces, policies, and cluster shapes.
//
// Do not "optimize" this file — its entire value is being the slow,
// obviously-correct implementation.

import (
	"sort"

	"repro/internal/trace"
)

// simulateOracle runs the naive reference implementation with the same
// validation as Simulate. Test-only entry point.
func simulateOracle(cluster Cluster, jobs []trace.Job, opt Options) (*Result, error) {
	return simulate(cluster, jobs, opt, true)
}

// scheduleNaive is the pre-incremental schedule(): fresh order copy per
// iteration, shadow recomputed with a fresh sort per backfill attempt.
func (s *sim) scheduleNaive() {
	if s.opt.Policy == ConservativeBackfill {
		s.scheduleConservativeNaive()
		return
	}
	for {
		startedOne := false
		order := s.orderNaive()
		if len(order) == 0 {
			return
		}
		head := order[0]
		if s.fits(head.job) {
			s.start(head)
			startedOne = true
		} else if s.opt.Policy == EASYBackfill && len(order) > 1 {
			// Shadow time: when will the head fit, assuming running jobs
			// hold resources until their *requested* limits (as EASY does)?
			shadow, spareCPU, spareGPUCore, spareGPU := s.shadowNaive(head.job)
			for _, cand := range order[1:] {
				if !s.fits(cand.job) {
					continue
				}
				// A backfilled job must either end by the shadow time or
				// not touch the resources the head is waiting for.
				endsByShadow := s.now+cand.job.Limit <= shadow
				var withinSpare bool
				if cand.job.Partition == "gpu" {
					withinSpare = cand.job.Cores() <= spareGPUCore && cand.job.GPUs <= spareGPU
				} else {
					withinSpare = cand.job.Cores() <= spareCPU
				}
				if endsByShadow || withinSpare {
					s.start(cand)
					s.backfills++
					startedOne = true
					break // re-evaluate shadow with updated state
				}
			}
		}
		if !startedOne {
			return
		}
	}
}

// orderNaive returns a freshly allocated copy of the queue in
// scheduling priority order, re-sorting (with per-comparison usage
// lookups) on every call.
func (s *sim) orderNaive() []*queued {
	q := make([]*queued, len(s.queue))
	copy(q, s.queue)
	if s.opt.Fairshare {
		sort.SliceStable(q, func(a, b int) bool {
			ua, ub := s.usage[q[a].user], s.usage[q[b].user]
			if ua != ub {
				return ua < ub
			}
			return q[a].seq < q[b].seq
		})
	}
	return q
}

// shadowNaive computes the head job's reservation with a fresh
// allocation and sort of the running set per call.
func (s *sim) shadowNaive(head trace.Job) (shadowTime int64, spareCPU, spareGPUCore, spareGPU int) {
	// Sort running jobs by limit-based end time.
	type rel struct {
		t                int64
		cores, gpuc, gpu int
	}
	var rels []rel
	for _, e := range s.running {
		// Conservative end: start + limit. Start = end - elapsed.
		startT := e.end - e.job.Elapsed
		r := rel{t: startT + e.job.Limit}
		if e.job.Partition == "gpu" {
			r.gpuc = e.job.Cores()
			r.gpu = e.job.GPUs
		} else {
			r.cores = e.job.Cores()
		}
		rels = append(rels, r)
	}
	sort.Slice(rels, func(a, b int) bool { return rels[a].t < rels[b].t })
	cpu, gpuc, gpu := s.cpuFree, s.gpuCore, s.gpuFree
	headFits := func() bool {
		if head.Partition == "gpu" {
			return head.Cores() <= gpuc && head.GPUs <= gpu
		}
		return head.Cores() <= cpu
	}
	shadowTime = s.now
	for _, r := range rels {
		if headFits() {
			break
		}
		cpu += r.cores
		gpuc += r.gpuc
		gpu += r.gpu
		shadowTime = r.t
	}
	// Spare capacity at shadow time, after the head takes its share.
	if head.Partition == "gpu" {
		spareCPU = cpu
		spareGPUCore = gpuc - head.Cores()
		spareGPU = gpu - head.GPUs
	} else {
		spareCPU = cpu - head.Cores()
		spareGPUCore = gpuc
		spareGPU = gpu
	}
	if spareCPU < 0 {
		spareCPU = 0
	}
	if spareGPUCore < 0 {
		spareGPUCore = 0
	}
	if spareGPU < 0 {
		spareGPU = 0
	}
	return shadowTime, spareCPU, spareGPUCore, spareGPU
}

// naiveProfile is the original array-of-structs step function the
// optimized struct-of-arrays profile replaced.
type naiveProfile struct {
	times []int64
	free  []need
}

// newProfileNaive builds the availability profile from scratch: fresh
// slices, fresh sort of the running set.
func (s *sim) newProfileNaive() *naiveProfile {
	type release struct {
		t int64
		n need
	}
	var rels []release
	for _, e := range s.running {
		startT := e.end - e.job.Elapsed
		rels = append(rels, release{t: startT + e.job.Limit, n: needOf(e.job)})
	}
	sort.Slice(rels, func(a, b int) bool { return rels[a].t < rels[b].t })
	p := &naiveProfile{
		times: []int64{s.now},
		free:  []need{{cpu: s.cpuFree, gpuCore: s.gpuCore, gpu: s.gpuFree}},
	}
	for _, r := range rels {
		last := p.free[len(p.free)-1]
		next := need{cpu: last.cpu + r.n.cpu, gpuCore: last.gpuCore + r.n.gpuCore, gpu: last.gpu + r.n.gpu}
		if r.t <= p.times[len(p.times)-1] {
			// Release at (or before) the current step start: merge.
			p.free[len(p.free)-1] = next
			continue
		}
		p.times = append(p.times, r.t)
		p.free = append(p.free, next)
	}
	return p
}

// earliestFitNaive is the quadratic nested rescan: for each candidate
// step, re-checks the whole window, with the historical silent
// steady-state fallback.
func (p *naiveProfile) earliestFitNaive(n need, duration int64) int64 {
	for i := range p.times {
		start := p.times[i]
		if !n.fitsIn(p.free[i]) {
			continue
		}
		// Check the window [start, start+duration) stays feasible.
		end := start + duration
		ok := true
		for j := i + 1; j < len(p.times) && p.times[j] < end; j++ {
			if !n.fitsIn(p.free[j]) {
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	// After the last event everything running has released; the final
	// step is the steady state and must fit any pre-validated job.
	return p.times[len(p.times)-1]
}

// reserveNaive subtracts n over [start, start+duration) with two
// independent boundary insertions and a full-profile scan.
func (p *naiveProfile) reserveNaive(n need, start, duration int64) {
	end := start + duration
	p.ensureBoundaryNaive(start)
	p.ensureBoundaryNaive(end)
	for i := range p.times {
		if p.times[i] >= start && p.times[i] < end {
			p.free[i].cpu -= n.cpu
			p.free[i].gpuCore -= n.gpuCore
			p.free[i].gpu -= n.gpu
		}
	}
}

// ensureBoundaryNaive splits the step containing t so t is a step start.
func (p *naiveProfile) ensureBoundaryNaive(t int64) {
	if t <= p.times[0] {
		return
	}
	idx := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= t })
	if idx < len(p.times) && p.times[idx] == t {
		return
	}
	// Insert at idx, copying the preceding step's availability.
	p.times = append(p.times, 0)
	p.free = append(p.free, need{})
	copy(p.times[idx+1:], p.times[idx:])
	copy(p.free[idx+1:], p.free[idx:])
	p.times[idx] = t
	p.free[idx] = p.free[idx-1]
}

// scheduleConservativeNaive runs one conservative-backfill pass the
// pre-incremental way: fresh order copy and full profile rebuild after
// every started job.
func (s *sim) scheduleConservativeNaive() {
	for {
		order := s.orderNaive()
		if len(order) == 0 {
			return
		}
		p := s.newProfileNaive()
		startedOne := false
		depth := len(order)
		if depth > bfDepth {
			depth = bfDepth
		}
		for qi := 0; qi < depth; qi++ {
			q := order[qi]
			n := needOf(q.job)
			start := p.earliestFitNaive(n, q.job.Limit)
			if start == s.now && s.fits(q.job) {
				s.start(q)
				if qi > 0 {
					s.backfills++
				}
				startedOne = true
				break // state changed; rebuild the profile
			}
			p.reserveNaive(n, start, q.job.Limit)
		}
		if !startedOne {
			return
		}
	}
}
