package sched

// Microbenchmarks isolating the scheduler hot path per policy, so the
// incremental-profile claims in DESIGN.md ("Scheduler performance")
// are measurable without the rest of the pipeline. Two workloads: the
// standard 2024 campus trace, and a 10× synthetic trace (ten
// year-offset generations back to back) probing how the simulator
// scales with trace length. The *Naive variants run the reference
// oracle (oracle.go) — the pre-incremental implementation — on the
// same workload, so one `scripts/bench.sh` run records the speedup.

import (
	"sort"
	"sync"
	"testing"
	"unsafe"

	"repro/internal/rng"
	"repro/internal/table"
	"repro/internal/trace"
)

var (
	benchTraceOnce sync.Once
	benchCampus    []trace.Job
	benchCampus10x []trace.Job
)

func benchTraces(b *testing.B) (campus, campus10x []trace.Job) {
	b.Helper()
	benchTraceOnce.Do(func() {
		jobs, err := trace.CampusModel(2024).Generate(rng.New(7), 0)
		if err != nil {
			panic(err)
		}
		benchCampus = jobs
		// Ten generations, each shifted a year apart so the backlog
		// carries realistic arrival density across the whole span.
		const yearStride = 366 * 86400
		var big []trace.Job
		for i := 0; i < 10; i++ {
			chunk, err := trace.CampusModel(2024).Generate(rng.New(uint64(100+i)), uint64(i)*10_000_000)
			if err != nil {
				panic(err)
			}
			for j := range chunk {
				chunk[j].Submit += int64(i) * yearStride
			}
			big = append(big, chunk...)
		}
		sort.Slice(big, func(a, b int) bool {
			if big[a].Submit != big[b].Submit {
				return big[a].Submit < big[b].Submit
			}
			return big[a].ID < big[b].ID
		})
		benchCampus10x = big
	})
	return benchCampus, benchCampus10x
}

func benchSimulate(b *testing.B, jobs []trace.Job, opt Options, naive bool) {
	b.Helper()
	cluster := DefaultCampusCluster()
	run := Simulate
	if naive {
		run = simulateOracle
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(cluster, jobs, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

func BenchmarkSimulateFCFS(b *testing.B) {
	campus, big := benchTraces(b)
	opt := Options{Policy: FCFS}
	b.Run("campus", func(b *testing.B) { benchSimulate(b, campus, opt, false) })
	b.Run("campus10x", func(b *testing.B) { benchSimulate(b, big, opt, false) })
}

func BenchmarkSimulateEASY(b *testing.B) {
	campus, big := benchTraces(b)
	// Fairshare on, mirroring the pipeline's sim-policy stage.
	opt := Options{Policy: EASYBackfill, Fairshare: true}
	b.Run("campus", func(b *testing.B) { benchSimulate(b, campus, opt, false) })
	b.Run("campus10x", func(b *testing.B) { benchSimulate(b, big, opt, false) })
}

func BenchmarkSimulateConservative(b *testing.B) {
	campus, big := benchTraces(b)
	opt := Options{Policy: ConservativeBackfill}
	b.Run("campus", func(b *testing.B) { benchSimulate(b, campus, opt, false) })
	b.Run("campus10x", func(b *testing.B) { benchSimulate(b, big, opt, false) })
}

// Naive oracle baselines (the pre-incremental implementation), campus
// trace only — the 10× workload is impractically slow under the
// quadratic rescan, which is rather the point.
func BenchmarkSimulateEASYNaive(b *testing.B) {
	campus, _ := benchTraces(b)
	benchSimulate(b, campus, Options{Policy: EASYBackfill, Fairshare: true}, true)
}

func BenchmarkSimulateConservativeNaive(b *testing.B) {
	campus, _ := benchTraces(b)
	benchSimulate(b, campus, Options{Policy: ConservativeBackfill}, true)
}

// gen10xStream streams the same 10× workload benchTraces materializes,
// without ever holding it whole: ten year-strided generations emitted
// in arrival order (the stride keeps their submit windows disjoint).
func gen10xStream(emit func(trace.Job) error) error {
	const yearStride = 366 * 86400
	for i := 0; i < 10; i++ {
		off := int64(i) * yearStride
		err := trace.CampusModel(2024).GenerateStream(rng.New(uint64(100+i)), uint64(i)*10_000_000,
			func(j trace.Job) error {
				j.Submit += off
				return emit(j)
			})
		if err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkSimulateFeed10x measures the whole feed path — trace
// storage plus simulation — on the 10× trace, one sub-benchmark per
// storage strategy. Run with -benchmem: bytes/op and allocs/op carry
// the comparison, and the resident-trace-b metric reports how much of
// the trace each strategy keeps in memory while simulating (the
// []trace.Job slice holds everything; the spilling column table holds
// O(BatchSize × Resident) regardless of trace length).
func BenchmarkSimulateFeed10x(b *testing.B) {
	opt := Options{Policy: EASYBackfill, Fairshare: true}
	cluster := DefaultCampusCluster()
	jobSize := int(unsafe.Sizeof(trace.Job{}))
	b.Run("slice", func(b *testing.B) {
		b.ReportAllocs()
		resident := 0.0
		for i := 0; i < b.N; i++ {
			var jobs []trace.Job
			if err := gen10xStream(func(j trace.Job) error { jobs = append(jobs, j); return nil }); err != nil {
				b.Fatal(err)
			}
			if _, err := Simulate(cluster, jobs, opt); err != nil {
				b.Fatal(err)
			}
			resident = float64(cap(jobs) * jobSize)
		}
		b.ReportMetric(resident, "resident-trace-b")
	})
	bench := func(b *testing.B, opts func(b *testing.B) table.Options) {
		b.ReportAllocs()
		resident := 0.0
		for i := 0; i < b.N; i++ {
			tab, err := table.Build[trace.Job](trace.JobCodec{}, opts(b), func(appendRow func(trace.Job)) error {
				return gen10xStream(func(j trace.Job) error { appendRow(j); return nil })
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := SimulateTable(cluster, tab, opt); err != nil {
				b.Fatal(err)
			}
			resident = float64(tab.MemBytes())
		}
		b.ReportMetric(resident, "resident-trace-b")
	}
	b.Run("table", func(b *testing.B) {
		bench(b, func(b *testing.B) table.Options { return table.Options{} })
	})
	b.Run("table-spill", func(b *testing.B) {
		bench(b, func(b *testing.B) table.Options {
			return table.Options{SpillDir: b.TempDir(), Resident: 2}
		})
	})
}
