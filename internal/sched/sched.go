// Package sched implements a discrete-event cluster scheduler simulator:
// FCFS with optional EASY backfill and decayed-usage fairshare priority,
// over a two-pool (CPU/GPU) cluster. It turns a job trace into start
// times, waits, and a utilization timeline — the telemetry behind
// figures R-F4/F5 and the backfill ablation. Resources are modeled as
// fluid core/GPU pools per partition (no per-node packing), the standard
// simplification for queueing studies; conservation invariants are
// enforced at every event and covered by property tests.
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Cluster describes the simulated machine.
type Cluster struct {
	CPUNodes     int // nodes in the "cpu" partition
	GPUNodes     int // nodes in the "gpu" partition
	CoresPerNode int
	GPUsPerNode  int // per GPU node
}

// Validate checks the configuration.
func (c Cluster) Validate() error {
	if c.CPUNodes < 0 || c.GPUNodes < 0 || c.CPUNodes+c.GPUNodes == 0 {
		return fmt.Errorf("sched: cluster needs nodes, got cpu=%d gpu=%d", c.CPUNodes, c.GPUNodes)
	}
	if c.CoresPerNode <= 0 {
		return fmt.Errorf("sched: cores/node %d", c.CoresPerNode)
	}
	if c.GPUNodes > 0 && c.GPUsPerNode <= 0 {
		return fmt.Errorf("sched: gpu nodes without gpus/node")
	}
	return nil
}

// cpuCores and gpu pool capacities.
func (c Cluster) cpuCapacity() int { return c.CPUNodes * c.CoresPerNode }
func (c Cluster) gpuCapacity() int { return c.GPUNodes * c.GPUsPerNode }
func (c Cluster) gpuCoreCap() int  { return c.GPUNodes * c.CoresPerNode }

// DefaultCampusCluster mirrors the synthetic campus machine the trace
// generator targets: 256 CPU nodes × 32 cores, 48 GPU nodes × 4 GPUs.
func DefaultCampusCluster() Cluster {
	return Cluster{CPUNodes: 256, GPUNodes: 48, CoresPerNode: 32, GPUsPerNode: 4}
}

// Policy selects the scheduling discipline.
type Policy int

const (
	// FCFS is strict first-come-first-served: the queue head blocks
	// everything behind it.
	FCFS Policy = iota
	// EASYBackfill reserves a start for the queue head and lets later
	// jobs jump ahead only if they cannot delay that reservation.
	EASYBackfill
	// ConservativeBackfill gives every queued job (up to a depth cap) a
	// reservation; backfills may not delay any reservation, not just the
	// head's.
	ConservativeBackfill
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case EASYBackfill:
		return "easy-backfill"
	case ConservativeBackfill:
		return "conservative-backfill"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures a simulation run.
type Options struct {
	Policy Policy
	// Fairshare, when true, orders the queue by decayed per-user usage
	// (lighter users first) instead of pure submit order. The queue-head
	// guarantee of EASY backfill then applies to the priority order.
	Fairshare bool
	// FairshareHalfLife is the usage decay half-life in seconds
	// (default 7 days).
	FairshareHalfLife float64
	// UtilSampleEvery controls the spacing of utilization samples in
	// seconds (default 3600).
	UtilSampleEvery int64
}

// JobResult is the per-job outcome.
type JobResult struct {
	Job   trace.Job
	Start int64
	Wait  int64 // Start - Submit
}

// End returns the completion time.
func (r JobResult) End() int64 { return r.Start + r.Job.Elapsed }

// UtilSample is one point of the utilization timeline.
type UtilSample struct {
	Time    int64
	CPUUtil float64 // fraction of CPU-partition cores busy
	GPUUtil float64 // fraction of GPUs busy
	Queued  int     // jobs waiting
}

// Metrics aggregates a run.
type Metrics struct {
	Policy         Policy
	Jobs           int
	Makespan       int64
	MeanWait       float64
	MedianWait     float64
	P95Wait        float64
	MaxWait        int64
	AvgCPUUtil     float64 // time-averaged over the makespan
	AvgGPUUtil     float64
	BackfillStarts int // jobs started out of queue order
	// BoundedSlowdown is the geometric mean of max(1, (wait+run)/max(run,
	// 10s)), the standard responsiveness metric.
	BoundedSlowdown float64
	// CPUMeanWait and GPUMeanWait split mean wait by partition.
	CPUMeanWait float64
	GPUMeanWait float64
	// UserFairness is Jain's fairness index over per-user mean bounded
	// slowdown: 1 means every user experiences identical responsiveness,
	// 1/n means one user absorbs all the delay.
	UserFairness float64
}

// Result is the full simulation output.
type Result struct {
	Results []JobResult
	Samples []UtilSample
	Metrics Metrics
}

// ErrNeverFits reports a job whose request exceeds even the empty-
// cluster steady state, so no reservation can ever be honored. Simulate
// rejects such jobs up front; this error surfaces only when the
// pre-validation is bypassed (e.g. a profile constructed directly) and
// replaces the historical silent fallback that assumed feasibility.
var ErrNeverFits = errors.New("sched: job exceeds steady-state capacity")

// Simulate schedules jobs (any order; sorted internally by submit time)
// on the cluster. Jobs whose requests exceed the machine are rejected up
// front with an error naming the job. The simulation is deterministic.
func Simulate(cluster Cluster, jobs []trace.Job, opt Options) (*Result, error) {
	return simulate(cluster, jobs, opt, false)
}

func simulate(cluster Cluster, jobs []trace.Job, opt Options, naive bool) (*Result, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, errors.New("sched: no jobs")
	}
	applyOptionDefaults(&opt)
	for _, j := range jobs {
		if err := validateJobForCluster(cluster, j); err != nil {
			return nil, err
		}
	}
	s := newSim(cluster, jobs, opt)
	s.naive = naive
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.finish()
}

// sim holds the event-driven simulation state.
type sim struct {
	cluster Cluster
	opt     Options

	src      jobSource // arrival feed, in (Submit, ID) order
	total    int       // jobs the feed will deliver
	arrivals int       // jobs consumed so far; assigns arrival seq numbers

	queue   []*queued
	running runHeap

	cpuFree int // free cores, cpu partition
	gpuCore int // free cores, gpu partition
	gpuFree int // free gpus

	now     int64
	results []JobResult

	// Fairshare usage is interned: users get dense indexes at first
	// arrival, so the per-event decay multiplies a flat float slice
	// instead of rewriting a string-keyed map.
	userIdx   map[string]int
	usage     []float64 // decayed core-seconds per user index
	lastDecay int64

	samples    []UtilSample
	nextSample int64
	backfills  int

	cpuBusyInt float64 // ∫ busy cores dt, for time-averaged utilization
	gpuBusyInt float64
	lastT      int64

	// naive routes scheduling through the reference oracle (oracle.go).
	naive bool

	// Incremental availability machinery (DESIGN.md "Scheduler
	// performance"). releases mirrors the running set as limit-based
	// release events sorted by (t, seq), updated on every job start and
	// completion. base is the availability profile for the current
	// event, rebuilt from releases at most once per simulation event
	// (baseOK) and then maintained incrementally as jobs start; work is
	// the per-pass reservation scratch copied from base. prio caches
	// the fairshare priority order between mutations (prioDirty), and
	// shadowRels is the reusable buffer behind EASY's shadow sort.
	releases   []release
	base       profile
	work       profile
	baseOK     bool
	prio       []*queued
	prioDirty  bool
	shadowRels []shadowRel
}

type queued struct {
	job     trace.Job
	arrived int64
	seq     int     // arrival sequence, the FCFS tiebreak
	user    int     // interned usage index for job.User
	key     float64 // usage snapshot backing the cached priority order
}

// release is one future limit-based resource release, the unit of the
// incrementally maintained availability profile.
type release struct {
	t   int64 // release time: start + Limit
	seq int   // owning job's arrival seq (removal key, tiebreak)
	n   need
}

// shadowRel is the scratch element for the EASY shadow computation.
type shadowRel struct {
	t                int64
	cores, gpuc, gpu int
}

// runHeap orders running jobs by completion time.
type runEntry struct {
	end int64
	job trace.Job
	seq int
}
type runHeap []runEntry

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(a, b int) bool {
	if h[a].end != h[b].end {
		return h[a].end < h[b].end
	}
	return h[a].seq < h[b].seq
}
func (h runHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(runEntry)) }
func (h *runHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// JobsSorted reports whether jobs are already in simulation arrival
// order: ascending submit time, ties broken by ascending ID.
func JobsSorted(jobs []trace.Job) bool {
	for i := 1; i < len(jobs); i++ {
		a, b := jobs[i-1], jobs[i]
		if a.Submit > b.Submit || (a.Submit == b.Submit && a.ID > b.ID) {
			return false
		}
	}
	return true
}

func newSim(cluster Cluster, jobs []trace.Job, opt Options) *sim {
	// The generator emits each year's trace already in arrival order, so
	// the common case skips the defensive copy+sort entirely. The sim
	// never mutates pending entries, so aliasing the caller's slice is
	// safe; an unsorted input still gets the copy+sort fallback.
	pending := jobs
	if !JobsSorted(jobs) {
		sorted := make([]trace.Job, len(jobs))
		copy(sorted, jobs)
		sort.Slice(sorted, func(a, b int) bool {
			if sorted[a].Submit != sorted[b].Submit {
				return sorted[a].Submit < sorted[b].Submit
			}
			return sorted[a].ID < sorted[b].ID
		})
		pending = sorted
	}
	// Preallocate the event-queue structures to their known or easily
	// bounded sizes: every job produces exactly one result, the run heap
	// holds at most the running set, and the sample count is bounded by
	// the submit span (completions can extend past it, so keep slack).
	sampleCap := 64
	if n := len(pending); n > 0 && opt.UtilSampleEvery > 0 {
		span := pending[n-1].Submit - pending[0].Submit
		sampleCap += int(span / opt.UtilSampleEvery)
	}
	return newSimFromSource(cluster, &sliceSource{jobs: pending}, len(pending), sampleCap, opt)
}

// applyOptionDefaults fills the option defaults shared by the batch and
// streaming entry points.
func applyOptionDefaults(opt *Options) {
	if opt.UtilSampleEvery <= 0 {
		opt.UtilSampleEvery = 3600
	}
	if opt.FairshareHalfLife <= 0 {
		opt.FairshareHalfLife = 7 * 86400
	}
}

// newSimFromSource builds the simulation state over any arrival feed.
// total is the exact job count; sampleCap is only a capacity hint.
func newSimFromSource(cluster Cluster, src jobSource, total, sampleCap int, opt Options) *sim {
	return &sim{
		cluster:  cluster,
		opt:      opt,
		src:      src,
		total:    total,
		queue:    make([]*queued, 0, 64),
		running:  make(runHeap, 0, 256),
		results:  make([]JobResult, 0, total),
		samples:  make([]UtilSample, 0, sampleCap),
		cpuFree:  cluster.cpuCapacity(),
		gpuCore:  cluster.gpuCoreCap(),
		gpuFree:  cluster.gpuCapacity(),
		userIdx:  map[string]int{},
		releases: make([]release, 0, 256),
	}
}

// internUser returns the dense usage index for a user, allocating one
// on first sight.
func (s *sim) internUser(user string) int {
	if i, ok := s.userIdx[user]; ok {
		return i
	}
	i := len(s.usage)
	s.userIdx[user] = i
	s.usage = append(s.usage, 0)
	return i
}

// insertRelease adds a release keeping s.releases sorted by (t, seq).
func (s *sim) insertRelease(r release) {
	i := sort.Search(len(s.releases), func(i int) bool {
		e := s.releases[i]
		return e.t > r.t || (e.t == r.t && e.seq > r.seq)
	})
	s.releases = append(s.releases, release{})
	copy(s.releases[i+1:], s.releases[i:])
	s.releases[i] = r
}

// removeRelease drops the release of a completed job by its (t, seq)
// key. The entry must exist: the release list mirrors the run heap.
func (s *sim) removeRelease(t int64, seq int) {
	i := sort.Search(len(s.releases), func(i int) bool {
		e := s.releases[i]
		return e.t > t || (e.t == t && e.seq >= seq)
	})
	if i >= len(s.releases) || s.releases[i].t != t || s.releases[i].seq != seq {
		panic(fmt.Sprintf("sched: release bookkeeping lost entry t=%d seq=%d", t, seq))
	}
	s.releases = append(s.releases[:i], s.releases[i+1:]...)
}

func (s *sim) fits(j trace.Job) bool {
	if j.Partition == "gpu" {
		return j.Cores() <= s.gpuCore && j.GPUs <= s.gpuFree
	}
	return j.Cores() <= s.cpuFree
}

func (s *sim) alloc(j trace.Job) {
	if j.Partition == "gpu" {
		s.gpuCore -= j.Cores()
		s.gpuFree -= j.GPUs
	} else {
		s.cpuFree -= j.Cores()
	}
	if s.cpuFree < 0 || s.gpuCore < 0 || s.gpuFree < 0 {
		panic(fmt.Sprintf("sched: oversubscription allocating job %d", j.ID))
	}
}

func (s *sim) release(j trace.Job) {
	if j.Partition == "gpu" {
		s.gpuCore += j.Cores()
		s.gpuFree += j.GPUs
	} else {
		s.cpuFree += j.Cores()
	}
	if s.cpuFree > s.cluster.cpuCapacity() || s.gpuCore > s.cluster.gpuCoreCap() || s.gpuFree > s.cluster.gpuCapacity() {
		panic(fmt.Sprintf("sched: double release of job %d", j.ID))
	}
}

// advance moves simulated time forward, integrating busy resources and
// emitting utilization samples.
func (s *sim) advance(to int64) {
	if to < s.now {
		panic("sched: time went backwards")
	}
	dt := float64(to - s.lastT)
	busyCPU := float64(s.cluster.cpuCapacity() - s.cpuFree)
	busyGPU := float64(s.cluster.gpuCapacity() - s.gpuFree)
	s.cpuBusyInt += busyCPU * dt
	s.gpuBusyInt += busyGPU * dt
	s.lastT = to
	for s.nextSample <= to {
		cpuU, gpuU := 0.0, 0.0
		if cap := s.cluster.cpuCapacity(); cap > 0 {
			cpuU = busyCPU / float64(cap)
		}
		if cap := s.cluster.gpuCapacity(); cap > 0 {
			gpuU = busyGPU / float64(cap)
		}
		s.samples = append(s.samples, UtilSample{
			Time: s.nextSample, CPUUtil: cpuU, GPUUtil: gpuU, Queued: len(s.queue),
		})
		s.nextSample += s.opt.UtilSampleEvery
	}
	s.now = to
}

// decayUsage applies exponential decay to fairshare usage.
func (s *sim) decayUsage(to int64) {
	if !s.opt.Fairshare || to <= s.lastDecay {
		return
	}
	f := math.Exp2(-float64(to-s.lastDecay) / s.opt.FairshareHalfLife)
	for i := range s.usage {
		s.usage[i] *= f
	}
	s.lastDecay = to
	// Uniform positive scaling preserves strict order, but rounding can
	// contract two distinct usage values into a tie (changing which
	// tiebreak applies), so the cached priority order is conservatively
	// invalidated to stay byte-identical with the per-call re-sort.
	s.prioDirty = true
}

// order returns the queue in scheduling priority order. Without
// fairshare the queue itself (already in seq order) is returned —
// callers re-fetch after any start, which is the only mutation. With
// fairshare the priority order is cached and lazily re-sorted only
// after arrivals, starts, or decay (prioDirty), with the usage sort
// key snapshotted per entry so the comparator does no map lookups.
func (s *sim) order() []*queued {
	if !s.opt.Fairshare {
		return s.queue
	}
	if s.prioDirty {
		s.prio = append(s.prio[:0], s.queue...)
		for _, q := range s.prio {
			q.key = s.usage[q.user]
		}
		sort.SliceStable(s.prio, func(a, b int) bool {
			if s.prio[a].key != s.prio[b].key {
				return s.prio[a].key < s.prio[b].key
			}
			return s.prio[a].seq < s.prio[b].seq
		})
		s.prioDirty = false
	}
	return s.prio
}

func (s *sim) start(q *queued) {
	s.alloc(q.job)
	heap.Push(&s.running, runEntry{end: s.now + q.job.Elapsed, job: q.job, seq: q.seq})
	s.insertRelease(release{t: s.now + q.job.Limit, seq: q.seq, n: needOf(q.job)})
	s.results = append(s.results, JobResult{Job: q.job, Start: s.now, Wait: s.now - q.job.Submit})
	s.usage[q.user] += float64(q.job.Cores()) * float64(q.job.Elapsed)
	s.prioDirty = true
	// Remove from queue.
	for i, e := range s.queue {
		if e == q {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
	panic("sched: started a job not in the queue")
}

// schedule starts every job the policy allows at the current instant.
func (s *sim) schedule() error {
	if s.naive {
		s.scheduleNaive()
		return nil
	}
	if s.opt.Policy == ConservativeBackfill {
		return s.scheduleConservative()
	}
	for {
		startedOne := false
		order := s.order()
		if len(order) == 0 {
			return nil
		}
		head := order[0]
		if s.fits(head.job) {
			s.start(head)
			startedOne = true
		} else if s.opt.Policy == EASYBackfill && len(order) > 1 {
			// Shadow time: when will the head fit, assuming running jobs
			// hold resources until their *requested* limits (as EASY does)?
			shadow, spareCPU, spareGPUCore, spareGPU := s.shadow(head.job)
			for _, cand := range order[1:] {
				if !s.fits(cand.job) {
					continue
				}
				// A backfilled job must either end by the shadow time or
				// not touch the resources the head is waiting for.
				endsByShadow := s.now+cand.job.Limit <= shadow
				var withinSpare bool
				if cand.job.Partition == "gpu" {
					withinSpare = cand.job.Cores() <= spareGPUCore && cand.job.GPUs <= spareGPU
				} else {
					withinSpare = cand.job.Cores() <= spareCPU
				}
				if endsByShadow || withinSpare {
					s.start(cand)
					s.backfills++
					startedOne = true
					break // re-evaluate shadow with updated state
				}
			}
		}
		if !startedOne {
			return nil
		}
	}
}

// shadow computes the head job's reservation: the earliest time enough
// resources free up (by requested limits), plus the spare capacity at
// that time beyond what the head needs. The rels buffer is reused
// across calls; the fill order (run-heap layout) and tie-unstable sort
// are kept exactly as the oracle's so spare-capacity ties resolve
// identically.
func (s *sim) shadow(head trace.Job) (shadowTime int64, spareCPU, spareGPUCore, spareGPU int) {
	rels := s.shadowRels[:0]
	for i := range s.running {
		e := &s.running[i]
		// Conservative end: start + limit. Start = end - elapsed.
		startT := e.end - e.job.Elapsed
		r := shadowRel{t: startT + e.job.Limit}
		if e.job.Partition == "gpu" {
			r.gpuc = e.job.Cores()
			r.gpu = e.job.GPUs
		} else {
			r.cores = e.job.Cores()
		}
		rels = append(rels, r)
	}
	s.shadowRels = rels
	sort.Slice(rels, func(a, b int) bool { return rels[a].t < rels[b].t })
	cpu, gpuc, gpu := s.cpuFree, s.gpuCore, s.gpuFree
	headFits := func() bool {
		if head.Partition == "gpu" {
			return head.Cores() <= gpuc && head.GPUs <= gpu
		}
		return head.Cores() <= cpu
	}
	shadowTime = s.now
	for _, r := range rels {
		if headFits() {
			break
		}
		cpu += r.cores
		gpuc += r.gpuc
		gpu += r.gpu
		shadowTime = r.t
	}
	// Spare capacity at shadow time, after the head takes its share.
	if head.Partition == "gpu" {
		spareCPU = cpu
		spareGPUCore = gpuc - head.Cores()
		spareGPU = gpu - head.GPUs
	} else {
		spareCPU = cpu - head.Cores()
		spareGPUCore = gpuc
		spareGPU = gpu
	}
	if spareCPU < 0 {
		spareCPU = 0
	}
	if spareGPUCore < 0 {
		spareGPUCore = 0
	}
	if spareGPU < 0 {
		spareGPU = 0
	}
	return shadowTime, spareCPU, spareGPUCore, spareGPU
}

func (s *sim) run() error {
	guard := 0
	maxEvents := s.total*4 + 16
	for {
		_, more := s.src.peek()
		if !more && len(s.queue) == 0 && s.running.Len() == 0 {
			break
		}
		guard++
		if guard > maxEvents*4 {
			return fmt.Errorf("sched: event budget exceeded (%d events) — scheduler wedged", guard)
		}
		// Next event: arrival or completion.
		var next int64 = math.MaxInt64
		if t, ok := s.src.peek(); ok {
			next = t
		}
		if s.running.Len() > 0 && s.running[0].end < next {
			next = s.running[0].end
		}
		if next == math.MaxInt64 {
			if err := s.src.err(); err != nil {
				// The feed died with jobs still queued; report the feed
				// failure, not a phantom deadlock.
				return err
			}
			// Queue non-empty but nothing running and no arrivals: the
			// queue head cannot ever start — run() pre-validation should
			// have caught this.
			return fmt.Errorf("sched: deadlock with %d queued jobs", len(s.queue))
		}
		s.advance(next)
		s.decayUsage(next)
		// A new simulation event: time moved and/or the running set is
		// about to change, so the availability profile must be rebuilt
		// (at most once) before the next conservative pass uses it.
		s.baseOK = false
		// Process completions at this instant.
		for s.running.Len() > 0 && s.running[0].end == next {
			e := heap.Pop(&s.running).(runEntry)
			s.release(e.job)
			s.removeRelease(e.end-e.job.Elapsed+e.job.Limit, e.seq)
		}
		// Process arrivals at this instant.
		for {
			t, ok := s.src.peek()
			if !ok || t != next {
				break
			}
			j := s.src.pop()
			s.queue = append(s.queue, &queued{job: j, arrived: next, seq: s.arrivals, user: s.internUser(j.User)})
			s.arrivals++
			s.prioDirty = true
		}
		if err := s.schedule(); err != nil {
			return err
		}
	}
	// A feed failure (scan error, invalid or out-of-order job) presents
	// as a drained source; surface it rather than returning a partial
	// simulation.
	if err := s.src.err(); err != nil {
		return err
	}
	return nil
}

func (s *sim) finish() (*Result, error) {
	m := Metrics{Policy: s.opt.Policy, Jobs: len(s.results), BackfillStarts: s.backfills}
	waits := make([]float64, len(s.results))
	var end int64
	for i, r := range s.results {
		waits[i] = float64(r.Wait)
		if r.Wait < 0 {
			return nil, fmt.Errorf("sched: job %d has negative wait %d", r.Job.ID, r.Wait)
		}
		if e := r.End(); e > end {
			end = e
		}
		if r.Wait > m.MaxWait {
			m.MaxWait = r.Wait
		}
	}
	m.Makespan = end
	sort.Float64s(waits)
	sum := 0.0
	for _, w := range waits {
		sum += w
	}
	m.MeanWait = sum / float64(len(waits))
	m.MedianWait = quantileSorted(waits, 0.5)
	m.P95Wait = quantileSorted(waits, 0.95)
	m.BoundedSlowdown = meanBoundedSlowdown(s.results)
	m.UserFairness = jainFairness(s.results, len(s.userIdx))
	var cpuSum, gpuSum float64
	var cpuN, gpuN int
	for _, r := range s.results {
		if r.Job.Partition == "gpu" {
			gpuSum += float64(r.Wait)
			gpuN++
		} else {
			cpuSum += float64(r.Wait)
			cpuN++
		}
	}
	if cpuN > 0 {
		m.CPUMeanWait = cpuSum / float64(cpuN)
	}
	if gpuN > 0 {
		m.GPUMeanWait = gpuSum / float64(gpuN)
	}
	if end > 0 {
		if cap := s.cluster.cpuCapacity(); cap > 0 {
			m.AvgCPUUtil = s.cpuBusyInt / (float64(cap) * float64(end))
		}
		if cap := s.cluster.gpuCapacity(); cap > 0 {
			m.AvgGPUUtil = s.gpuBusyInt / (float64(cap) * float64(end))
		}
	}
	return &Result{Results: s.results, Samples: s.samples, Metrics: m}, nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(h)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
