package sched

import (
	"errors"
	"fmt"

	"repro/internal/table"
	"repro/internal/trace"
)

// jobSource is the simulator's arrival feed: jobs in (Submit, ID)
// order, consumed one at a time. It decouples the event loop from
// storage so a whole-trace []Job and a streamed column table drive the
// identical simulation — the arrival sequence numbers, and therefore
// every tie-break downstream, depend only on arrival order.
type jobSource interface {
	// peek returns the next job's submit time without consuming it.
	peek() (int64, bool)
	// pop consumes and returns the next job. Only valid after a
	// successful peek.
	pop() trace.Job
	// err reports the first feed failure (scan error, invalid job,
	// out-of-order feed). The feed reports drained once err is set.
	err() error
}

// sliceSource feeds from a sorted in-memory slice.
type sliceSource struct {
	jobs []trace.Job
	i    int
}

func (s *sliceSource) peek() (int64, bool) {
	if s.i >= len(s.jobs) {
		return 0, false
	}
	return s.jobs[s.i].Submit, true
}

func (s *sliceSource) pop() trace.Job {
	j := s.jobs[s.i]
	s.i++
	return j
}

func (s *sliceSource) err() error { return nil }

// validateJobForCluster is the per-job admission check shared by the
// batch path (which runs it up front) and the streaming path (which
// runs it as rows arrive).
func validateJobForCluster(cluster Cluster, j trace.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	switch j.Partition {
	case "gpu":
		if j.Cores() > cluster.gpuCoreCap() || j.GPUs > cluster.gpuCapacity() {
			return fmt.Errorf("sched: job %d wants %d cores / %d gpus, gpu partition has %d / %d",
				j.ID, j.Cores(), j.GPUs, cluster.gpuCoreCap(), cluster.gpuCapacity())
		}
	default:
		if j.Cores() > cluster.cpuCapacity() {
			return fmt.Errorf("sched: job %d wants %d cores, cpu partition has %d",
				j.ID, j.Cores(), cluster.cpuCapacity())
		}
		if j.GPUs > 0 {
			return fmt.Errorf("sched: job %d requests gpus on partition %q", j.ID, j.Partition)
		}
	}
	return nil
}

// tableSource feeds from a job table scanner with one-row lookahead,
// validating each job and asserting the feed is in arrival order.
type tableSource struct {
	sc      table.Scanner[trace.Job]
	cluster Cluster
	have    bool
	next    trace.Job
	prev    trace.Job
	started bool
	e       error
}

func (s *tableSource) fill() {
	if s.have || s.e != nil {
		return
	}
	if !s.sc.Scan() {
		s.e = s.sc.Err()
		return
	}
	j := s.sc.Row()
	if err := validateJobForCluster(s.cluster, j); err != nil {
		s.e = err
		return
	}
	if s.started && (j.Submit < s.prev.Submit || (j.Submit == s.prev.Submit && j.ID <= s.prev.ID)) {
		s.e = fmt.Errorf("sched: streamed trace out of arrival order: job %d (submit %d) after job %d (submit %d)",
			j.ID, j.Submit, s.prev.ID, s.prev.Submit)
		return
	}
	s.next, s.prev, s.have, s.started = j, j, true, true
}

func (s *tableSource) peek() (int64, bool) {
	s.fill()
	if !s.have {
		return 0, false
	}
	return s.next.Submit, true
}

func (s *tableSource) pop() trace.Job {
	s.have = false
	return s.next
}

func (s *tableSource) err() error { return s.e }

// SimulateTable schedules a streamed job table on the cluster. The
// table must be in arrival order — (Submit, ID) ascending — which is
// how the generator emits traces; an out-of-order feed is an error, not
// a silent re-sort (sorting would require materializing the trace,
// defeating the streaming path). Jobs are validated as they arrive.
// The simulation is identical, event for event, to Simulate over the
// materialized rows (pinned by the feed-equivalence test); memory held
// by the feed is one batch plus a prefetch instead of the whole trace.
func SimulateTable(cluster Cluster, t table.Table[trace.Job], opt Options) (*Result, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	total := t.Len(table.Exact)
	if total == 0 {
		return nil, errors.New("sched: no jobs")
	}
	applyOptionDefaults(&opt)
	src := &tableSource{sc: t.Scanner(0, 1, 1), cluster: cluster}
	s := newSimFromSource(cluster, src, total, 64+total/8, opt)
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.finish()
}
