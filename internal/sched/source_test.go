package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/table"
	"repro/internal/trace"
)

func feedTrace(t *testing.T) []trace.Job {
	t.Helper()
	jobs, err := trace.CampusModel(2024).Generate(rng.New(5).SplitNamed("feed-test"), 1)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestSimulateTableMatchesSlice pins the feed equivalence: the streamed
// simulation is event-for-event identical to the batch one, across
// policies, batch sizes, and the spill path.
func TestSimulateTableMatchesSlice(t *testing.T) {
	jobs := feedTrace(t)
	cluster := DefaultCampusCluster()
	for _, pol := range []Policy{FCFS, EASYBackfill, ConservativeBackfill} {
		opt := Options{Policy: pol, Fairshare: pol == EASYBackfill}
		want, err := Simulate(cluster, jobs, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			name string
			opt  table.Options
		}{
			{"batch64", table.Options{BatchSize: 64}},
			{"batch4096", table.Options{BatchSize: 4096}},
			{"spill", table.Options{BatchSize: 512, SpillDir: t.TempDir(), Resident: 2}},
		} {
			tab, err := table.FromSlice[trace.Job](trace.JobCodec{}, tc.opt, jobs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SimulateTable(cluster, tab, opt)
			if err != nil {
				t.Fatalf("%v/%s: %v", pol, tc.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v/%s: streamed result differs from batch result", pol, tc.name)
			}
		}
	}
}

func TestSimulateTableRejectsOutOfOrderFeed(t *testing.T) {
	jobs := feedTrace(t)[:100]
	jobs[40], jobs[60] = jobs[60], jobs[40] // break arrival order
	tab := table.NewSlice(jobs, trace.JobCodec{}.HashRow)
	_, err := SimulateTable(DefaultCampusCluster(), tab, Options{Policy: FCFS})
	if err == nil || !strings.Contains(err.Error(), "out of arrival order") {
		t.Fatalf("want out-of-order feed error, got %v", err)
	}
}

func TestSimulateTableValidatesLazily(t *testing.T) {
	jobs := feedTrace(t)[:100]
	jobs[50].Nodes = 10_000 // exceeds any partition
	tab := table.NewSlice(jobs, trace.JobCodec{}.HashRow)
	_, err := SimulateTable(DefaultCampusCluster(), tab, Options{Policy: FCFS})
	if err == nil || !strings.Contains(err.Error(), "wants") {
		t.Fatalf("want capacity rejection from the streamed feed, got %v", err)
	}
}

func TestSimulateTableEmpty(t *testing.T) {
	tab := table.NewSlice[trace.Job](nil, trace.JobCodec{}.HashRow)
	if _, err := SimulateTable(DefaultCampusCluster(), tab, Options{Policy: FCFS}); err == nil {
		t.Fatal("want error for empty table")
	}
}
