package sched

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func TestConservativeBackfillsHarmlessJob(t *testing.T) {
	// Same fixture as the EASY test: 8 spare cores, head needs all 32,
	// tiny job finishes before the head's reservation.
	jobs := []trace.Job{
		mkJob(1, 0, 3, 8, 1000),
		mkJob(2, 10, 4, 8, 500),
		mkJob(3, 20, 1, 1, 100),
	}
	res, err := Simulate(smallCluster(), jobs, Options{Policy: ConservativeBackfill})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range res.Results {
		byID[r.Job.ID] = r
	}
	if byID[3].Start != 20 {
		t.Fatalf("tiny job should backfill at 20, started %d", byID[3].Start)
	}
	if byID[2].Start != 1000 {
		t.Fatalf("head delayed to %d", byID[2].Start)
	}
	if res.Metrics.BackfillStarts != 1 {
		t.Fatalf("backfills=%d", res.Metrics.BackfillStarts)
	}
}

func TestConservativeRefusesHarmfulBackfill(t *testing.T) {
	jobs := []trace.Job{
		mkJob(1, 0, 3, 8, 1000),
		mkJob(2, 10, 4, 8, 500),
		{ID: 3, User: "u2", Account: "bio", Partition: "cpu", Year: 2024,
			Submit: 20, Nodes: 1, CoresPer: 8, Limit: 5000, Elapsed: 4000,
			State: trace.StateCompleted, Language: "c"},
	}
	res, err := Simulate(smallCluster(), jobs, Options{Policy: ConservativeBackfill})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range res.Results {
		byID[r.Job.ID] = r
	}
	if byID[2].Start != 1000 {
		t.Fatalf("head delayed to %d", byID[2].Start)
	}
	if byID[3].Start < byID[2].Start {
		t.Fatalf("harmful backfill at %d", byID[3].Start)
	}
}

// Conservative must never delay the third-queued job's start past what
// it would get under FCFS-with-reservations; in particular the classic
// EASY pathology (backfill delaying job 3's reservation) cannot happen.
func TestConservativeProtectsDeepQueue(t *testing.T) {
	// Machine: 32 cpu cores. Job1 runs 0..1000 (24 cores, limit 1060).
	// Job2 (head) needs 16 and is reserved at 1060 with 16 cores spare.
	// Job4 (8 cores, long limit) fits in that spare, so EASY starts it at
	// t=30 — the classic EASY pathology: it cannot delay the *head*, but
	// it blocks job3 (32 cores) far past its no-backfill start.
	// Conservative also reserves job3, so job4 must wait.
	jobs := []trace.Job{
		mkJob(1, 0, 3, 8, 1000), // 24 cores, limit 1060
		mkJob(2, 10, 2, 8, 500), // head, 16 cores, limit 560
		mkJob(3, 20, 4, 8, 500), // 32 cores, limit 560
		{ID: 4, User: "u9", Account: "x", Partition: "cpu", Year: 2024,
			Submit: 30, Nodes: 1, CoresPer: 8, Limit: 4000, Elapsed: 3500,
			State: trace.StateCompleted, Language: "c"}, // 8 cores, long
	}
	easy, err := Simulate(smallCluster(), jobs, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Simulate(smallCluster(), jobs, Options{Policy: ConservativeBackfill})
	if err != nil {
		t.Fatal(err)
	}
	get := func(res *Result, id uint64) JobResult {
		for _, r := range res.Results {
			if r.Job.ID == id {
				return r
			}
		}
		t.Fatalf("job %d missing", id)
		return JobResult{}
	}
	// EASY lets job4 backfill at t=30 (spare 8 cores, head unaffected),
	// which delays job3 (needs 24 cores, now blocked by job4 until 3530).
	if get(easy, 4).Start != 30 {
		t.Fatalf("easy should backfill job4 at 30, got %d", get(easy, 4).Start)
	}
	if get(easy, 3).Start <= get(cons, 3).Start {
		t.Fatalf("conservative should protect job3: easy=%d cons=%d",
			get(easy, 3).Start, get(cons, 3).Start)
	}
	// Under conservative, job3 must start no later than its no-backfill
	// reservation (job2's limit-based end, 1060+560=1620).
	if got := get(cons, 3).Start; got > 1620 {
		t.Fatalf("conservative delayed job3 to %d", got)
	}
	// And conservative's job4 start must respect job3's reservation.
	if get(cons, 4).Start <= 30 {
		t.Fatalf("conservative backfilled job4 at %d", get(cons, 4).Start)
	}
}

func TestConservativeInvariantsOnCampusTrace(t *testing.T) {
	jobs, err := trace.CampusModel(2019).Generate(rng.New(15), 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs = jobs[:1500]
	res, err := Simulate(DefaultCampusCluster(), jobs, Options{Policy: ConservativeBackfill})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(jobs) {
		t.Fatalf("%d results", len(res.Results))
	}
	for _, r := range res.Results {
		if r.Wait < 0 || r.Start < r.Job.Submit {
			t.Fatalf("bad result %+v", r)
		}
	}
	fcfs, err := Simulate(DefaultCampusCluster(), jobs, Options{Policy: FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MeanWait > fcfs.Metrics.MeanWait {
		t.Fatalf("conservative wait %.0f above fcfs %.0f",
			res.Metrics.MeanWait, fcfs.Metrics.MeanWait)
	}
	if res.Metrics.BackfillStarts == 0 {
		t.Fatal("no conservative backfills on a realistic trace")
	}
}

func TestBoundedSlowdownMetric(t *testing.T) {
	// Single job with zero wait: slowdown 1.
	res, err := Simulate(smallCluster(), []trace.Job{mkJob(1, 0, 1, 8, 600)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BoundedSlowdown != 1 {
		t.Fatalf("slowdown %g", res.Metrics.BoundedSlowdown)
	}
	// Forced queueing: slowdown > 1.
	jobs := []trace.Job{mkJob(1, 0, 4, 8, 1000), mkJob(2, 0, 4, 8, 100)}
	res, err = Simulate(smallCluster(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BoundedSlowdown <= 1 {
		t.Fatalf("queued slowdown %g", res.Metrics.BoundedSlowdown)
	}
}

func TestPartitionWaitMetrics(t *testing.T) {
	gpuJob := trace.Job{
		ID: 1, User: "u", Account: "cs", Partition: "gpu", Year: 2024,
		Submit: 0, Nodes: 1, CoresPer: 8, GPUs: 4,
		Limit: 700, Elapsed: 600, State: trace.StateCompleted, Language: "python",
	}
	gpuJob2 := gpuJob
	gpuJob2.ID = 2
	cpuJob := mkJob(3, 0, 1, 8, 100)
	// EASY lets the cpu job start immediately despite the blocked gpu
	// head (strict FCFS would head-block across partitions).
	res, err := Simulate(smallCluster(), []trace.Job{gpuJob, gpuJob2, cpuJob}, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CPUMeanWait != 0 {
		t.Fatalf("cpu wait %g", res.Metrics.CPUMeanWait)
	}
	if res.Metrics.GPUMeanWait != 300 { // one waits 600s, one 0
		t.Fatalf("gpu wait %g", res.Metrics.GPUMeanWait)
	}
}

func TestProfileOperations(t *testing.T) {
	p := &profile{
		times:   []int64{0, 100, 200},
		cpu:     []int32{8, 16, 32},
		gpuCore: []int32{0, 0, 0},
		gpu:     []int32{0, 0, 0},
	}
	// Needs 16 cores for 150s: at t=0 only 8 free; at t=100, window
	// [100,250) has >= 16 throughout.
	if got, ok := p.earliestFit(need{cpu: 16}, 150); !ok || got != 100 {
		t.Fatalf("earliestFit=%d ok=%v", got, ok)
	}
	// Needs 32 for 10s: only from t=200.
	if got, ok := p.earliestFit(need{cpu: 32}, 10); !ok || got != 200 {
		t.Fatalf("earliestFit=%d ok=%v", got, ok)
	}
	// Reserve 8 cores over [100, 250) and re-check.
	p.reserve(need{cpu: 8}, 100, 150)
	if got, ok := p.earliestFit(need{cpu: 32}, 10); !ok || got != 250 {
		t.Fatalf("post-reserve earliestFit=%d ok=%v", got, ok)
	}
	// A demand above even the steady-state step can never fit: the old
	// implementation silently returned the last step start; the
	// incremental one refuses.
	if got, ok := p.earliestFit(need{cpu: 64}, 10); ok {
		t.Fatalf("oversized demand got a reservation at %d", got)
	}
	// Boundary insertion kept steps sorted.
	for i := 1; i < len(p.times); i++ {
		if p.times[i] <= p.times[i-1] {
			t.Fatalf("profile times unsorted: %v", p.times)
		}
	}
}

func TestJainFairness(t *testing.T) {
	// Single job, zero wait: perfectly fair.
	res, err := Simulate(smallCluster(), []trace.Job{mkJob(1, 0, 1, 8, 600)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.UserFairness != 1 {
		t.Fatalf("fairness %g", res.Metrics.UserFairness)
	}
	// Two users, one waits heavily behind the other: fairness < 1.
	j1 := mkJob(1, 0, 4, 8, 5000)
	j2 := mkJob(2, 1, 4, 8, 100)
	j2.User = "u2"
	res, err = Simulate(smallCluster(), []trace.Job{j1, j2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Metrics.UserFairness
	if f <= 0.5 || f >= 1 {
		t.Fatalf("skewed fairness %g should be in (0.5, 1)", f)
	}
	// Fairshare ordering should not lower fairness on a realistic trace.
	jobs, err := trace.CampusModel(2024).Generate(rng.New(21), 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs = jobs[:2000]
	plain, err := Simulate(DefaultCampusCluster(), jobs, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Simulate(DefaultCampusCluster(), jobs, Options{Policy: EASYBackfill, Fairshare: true})
	if err != nil {
		t.Fatal(err)
	}
	if fair.Metrics.UserFairness < plain.Metrics.UserFairness-0.05 {
		t.Fatalf("fairshare reduced fairness: %.3f vs %.3f",
			fair.Metrics.UserFairness, plain.Metrics.UserFairness)
	}
}
