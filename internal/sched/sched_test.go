package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"
)

func smallCluster() Cluster {
	return Cluster{CPUNodes: 4, GPUNodes: 1, CoresPerNode: 8, GPUsPerNode: 4}
}

func mkJob(id uint64, submit int64, nodes, cores int, elapsed int64) trace.Job {
	return trace.Job{
		ID: id, User: "u1", Account: "phys", Partition: "cpu", Year: 2024,
		Submit: submit, Nodes: nodes, CoresPer: cores,
		Limit: elapsed + 60, Elapsed: elapsed, State: trace.StateCompleted,
		Language: "c",
	}
}

func TestClusterValidate(t *testing.T) {
	if err := smallCluster().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Cluster{
		{},
		{CPUNodes: 1, CoresPerNode: 0},
		{CPUNodes: -1, GPUNodes: 2, CoresPerNode: 4, GPUsPerNode: 1},
		{CPUNodes: 1, GPUNodes: 1, CoresPerNode: 4, GPUsPerNode: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad cluster %d accepted", i)
		}
	}
}

func TestSimulateEmptyAndOversized(t *testing.T) {
	if _, err := Simulate(smallCluster(), nil, Options{}); err == nil {
		t.Fatal("no jobs accepted")
	}
	// Job wider than the machine is rejected up front.
	wide := mkJob(1, 0, 100, 8, 100)
	if _, err := Simulate(smallCluster(), []trace.Job{wide}, Options{}); err == nil {
		t.Fatal("impossible job accepted")
	}
	// GPU request on a CPU partition is rejected.
	bad := mkJob(2, 0, 1, 4, 100)
	bad.GPUs = 2
	if _, err := Simulate(smallCluster(), []trace.Job{bad}, Options{}); err == nil {
		t.Fatal("gpus on cpu partition accepted")
	}
}

func TestSingleJobStartsImmediately(t *testing.T) {
	res, err := Simulate(smallCluster(), []trace.Job{mkJob(1, 50, 1, 8, 600)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if r.Start != 50 || r.Wait != 0 || r.End() != 650 {
		t.Fatalf("result %+v", r)
	}
	if res.Metrics.Makespan != 650 || res.Metrics.Jobs != 1 {
		t.Fatalf("metrics %+v", res.Metrics)
	}
}

func TestFCFSQueuesWhenFull(t *testing.T) {
	// Cluster: 32 CPU cores. Two 32-core jobs: second waits for first.
	jobs := []trace.Job{
		mkJob(1, 0, 4, 8, 1000),
		mkJob(2, 10, 4, 8, 500),
	}
	res, err := Simulate(smallCluster(), jobs, Options{Policy: FCFS})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range res.Results {
		byID[r.Job.ID] = r
	}
	if byID[1].Start != 0 {
		t.Fatalf("job1 start %d", byID[1].Start)
	}
	if byID[2].Start != 1000 || byID[2].Wait != 990 {
		t.Fatalf("job2 %+v", byID[2])
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	// Head needs the whole machine; a tiny job behind it must NOT jump
	// ahead under strict FCFS.
	jobs := []trace.Job{
		mkJob(1, 0, 4, 8, 1000), // occupies everything
		mkJob(2, 10, 4, 8, 500), // head of queue, needs everything
		mkJob(3, 20, 1, 1, 100), // tiny, could run but FCFS forbids
	}
	res, err := Simulate(smallCluster(), jobs, Options{Policy: FCFS})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range res.Results {
		byID[r.Job.ID] = r
	}
	if byID[3].Start < byID[2].Start {
		t.Fatalf("FCFS let job3 (start %d) pass job2 (start %d)", byID[3].Start, byID[2].Start)
	}
	if res.Metrics.BackfillStarts != 0 {
		t.Fatalf("FCFS reported %d backfills", res.Metrics.BackfillStarts)
	}
}

func TestEASYBackfillsHarmlessJob(t *testing.T) {
	// Job1 leaves 8 spare cores; the 32-core head cannot start until
	// job1's limit-based release (t=1060), but the tiny job (limit 160s)
	// finishes before that reservation, so it backfills immediately.
	jobs := []trace.Job{
		mkJob(1, 0, 3, 8, 1000), // 24 of 32 cores
		mkJob(2, 10, 4, 8, 500), // head, needs all 32
		mkJob(3, 20, 1, 1, 100), // tiny backfill candidate
	}
	res, err := Simulate(smallCluster(), jobs, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range res.Results {
		byID[r.Job.ID] = r
	}
	if byID[3].Start != 20 {
		t.Fatalf("job3 should backfill at 20, started %d", byID[3].Start)
	}
	// The head must not be delayed past its no-backfill start.
	if byID[2].Start != 1000 {
		t.Fatalf("backfill delayed the head: start %d", byID[2].Start)
	}
	if res.Metrics.BackfillStarts != 1 {
		t.Fatalf("backfills=%d", res.Metrics.BackfillStarts)
	}
}

func TestEASYRefusesHarmfulBackfill(t *testing.T) {
	// Candidate fits in the 8 spare cores now, but its limit crosses the
	// head's reservation and the head needs every core at shadow time,
	// so starting it would delay the head — it must not start.
	jobs := []trace.Job{
		mkJob(1, 0, 3, 8, 1000), // 24 of 32 cores until t=1000
		mkJob(2, 10, 4, 8, 500), // head, needs all 32
		{ID: 3, User: "u2", Account: "bio", Partition: "cpu", Year: 2024,
			Submit: 20, Nodes: 1, CoresPer: 8, Limit: 5000, Elapsed: 4000,
			State: trace.StateCompleted, Language: "c"},
	}
	res, err := Simulate(smallCluster(), jobs, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range res.Results {
		byID[r.Job.ID] = r
	}
	if byID[2].Start != 1000 {
		t.Fatalf("head delayed to %d", byID[2].Start)
	}
	if byID[3].Start < byID[2].Start {
		t.Fatalf("harmful backfill at %d", byID[3].Start)
	}
}

func TestGPUJobsUseGPUPool(t *testing.T) {
	gpuJob := trace.Job{
		ID: 1, User: "u1", Account: "cs", Partition: "gpu", Year: 2024,
		Submit: 0, Nodes: 1, CoresPer: 8, GPUs: 4,
		Limit: 700, Elapsed: 600, State: trace.StateCompleted, Language: "python",
	}
	gpuJob2 := gpuJob
	gpuJob2.ID = 2
	gpuJob2.Submit = 10
	cpuJob := mkJob(3, 20, 4, 8, 100)
	res, err := Simulate(smallCluster(), []trace.Job{gpuJob, gpuJob2, cpuJob}, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range res.Results {
		byID[r.Job.ID] = r
	}
	// Only 4 GPUs: second GPU job waits for the first.
	if byID[2].Start != 600 {
		t.Fatalf("gpu job2 start %d", byID[2].Start)
	}
	// CPU job is unaffected by GPU contention.
	if byID[3].Start != 20 {
		t.Fatalf("cpu job start %d", byID[3].Start)
	}
}

func TestFairshareReordersQueue(t *testing.T) {
	// u-heavy floods the machine; then one job each from u-heavy and
	// u-light arrive while it is busy. With fairshare, u-light goes first.
	var jobs []trace.Job
	jobs = append(jobs, trace.Job{
		ID: 1, User: "u-heavy", Account: "a", Partition: "cpu", Year: 2024,
		Submit: 0, Nodes: 4, CoresPer: 8, Limit: 1100, Elapsed: 1000,
		State: trace.StateCompleted, Language: "c"})
	jobs = append(jobs, trace.Job{
		ID: 2, User: "u-heavy", Account: "a", Partition: "cpu", Year: 2024,
		Submit: 10, Nodes: 4, CoresPer: 8, Limit: 600, Elapsed: 500,
		State: trace.StateCompleted, Language: "c"})
	jobs = append(jobs, trace.Job{
		ID: 3, User: "u-light", Account: "a", Partition: "cpu", Year: 2024,
		Submit: 20, Nodes: 4, CoresPer: 8, Limit: 600, Elapsed: 500,
		State: trace.StateCompleted, Language: "c"})

	fair, err := Simulate(smallCluster(), jobs, Options{Policy: FCFS, Fairshare: true})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]JobResult{}
	for _, r := range fair.Results {
		byID[r.Job.ID] = r
	}
	if byID[3].Start >= byID[2].Start {
		t.Fatalf("fairshare did not prioritize light user: light=%d heavy=%d",
			byID[3].Start, byID[2].Start)
	}

	strict, err := Simulate(smallCluster(), jobs, Options{Policy: FCFS})
	if err != nil {
		t.Fatal(err)
	}
	byID2 := map[uint64]JobResult{}
	for _, r := range strict.Results {
		byID2[r.Job.ID] = r
	}
	if byID2[2].Start >= byID2[3].Start {
		t.Fatalf("plain FCFS should keep submit order")
	}
}

func TestUtilizationSamples(t *testing.T) {
	jobs := []trace.Job{mkJob(1, 0, 4, 8, 7200)}
	res, err := Simulate(smallCluster(), jobs, Options{UtilSampleEvery: 1800})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range res.Samples {
		if s.CPUUtil < 0 || s.CPUUtil > 1 || s.GPUUtil < 0 || s.GPUUtil > 1 {
			t.Fatalf("sample out of range %+v", s)
		}
	}
	// Machine fully busy: a mid-run sample shows 100% CPU utilization.
	found := false
	for _, s := range res.Samples {
		if s.Time > 0 && s.Time < 7200 && s.CPUUtil == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no full-utilization sample: %+v", res.Samples)
	}
}

func TestBackfillImprovesOrEqualsUtilization(t *testing.T) {
	jobs, err := trace.CampusModel(2024).Generate(rng.New(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs = jobs[:3000]
	cluster := DefaultCampusCluster()
	fcfs, err := Simulate(cluster, jobs, Options{Policy: FCFS})
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Simulate(cluster, jobs, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	if easy.Metrics.BackfillStarts == 0 {
		t.Fatal("realistic trace produced zero backfills")
	}
	if easy.Metrics.MeanWait > fcfs.Metrics.MeanWait {
		t.Fatalf("backfill worsened mean wait: %.0f vs %.0f",
			easy.Metrics.MeanWait, fcfs.Metrics.MeanWait)
	}
	if easy.Metrics.Makespan > fcfs.Metrics.Makespan {
		t.Fatalf("backfill lengthened makespan: %d vs %d",
			easy.Metrics.Makespan, fcfs.Metrics.Makespan)
	}
}

// Conservation and sanity invariants on a realistic trace, both policies.
func TestInvariantsOnCampusTrace(t *testing.T) {
	jobs, err := trace.CampusModel(2020).Generate(rng.New(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs = jobs[:2500]
	for _, pol := range []Policy{FCFS, EASYBackfill} {
		res, err := Simulate(DefaultCampusCluster(), jobs, Options{Policy: pol, Fairshare: pol == EASYBackfill})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) != len(jobs) {
			t.Fatalf("%v: %d results for %d jobs", pol, len(res.Results), len(jobs))
		}
		seen := map[uint64]bool{}
		for _, r := range res.Results {
			if seen[r.Job.ID] {
				t.Fatalf("%v: job %d ran twice", pol, r.Job.ID)
			}
			seen[r.Job.ID] = true
			if r.Wait < 0 {
				t.Fatalf("%v: negative wait for %d", pol, r.Job.ID)
			}
			if r.Start < r.Job.Submit {
				t.Fatalf("%v: job %d started before submission", pol, r.Job.ID)
			}
		}
		if res.Metrics.AvgCPUUtil <= 0 || res.Metrics.AvgCPUUtil > 1 {
			t.Fatalf("%v: cpu util %g", pol, res.Metrics.AvgCPUUtil)
		}
		if res.Metrics.MedianWait > res.Metrics.P95Wait {
			t.Fatalf("%v: median wait above p95", pol)
		}
	}
}

// Property: on random small traces, no oversubscription panic occurs and
// every job runs exactly once with non-negative wait under both policies.
func TestQuickSchedulerInvariants(t *testing.T) {
	cluster := Cluster{CPUNodes: 2, GPUNodes: 1, CoresPerNode: 4, GPUsPerNode: 2}
	f := func(seed uint64, nRaw uint8, policy bool) bool {
		r := rng.New(seed)
		n := int(nRaw%40) + 1
		jobs := make([]trace.Job, n)
		for i := range jobs {
			part := "cpu"
			gpus := 0
			nodes := 1 + r.Intn(2)
			if r.Bool(0.3) {
				part = "gpu"
				nodes = 1
				gpus = 1 + r.Intn(2)
			}
			el := int64(30 + r.Intn(2000))
			jobs[i] = trace.Job{
				ID: uint64(i + 1), User: []string{"a", "b", "c"}[r.Intn(3)],
				Account: "x", Partition: part, Year: 2024,
				Submit: int64(r.Intn(5000)), Nodes: nodes,
				CoresPer: 1 + r.Intn(4), GPUs: gpus,
				Limit: el + int64(r.Intn(500)) + 1, Elapsed: el,
				State: trace.StateCompleted, Language: "c",
			}
		}
		pol := FCFS
		if policy {
			pol = EASYBackfill
		}
		res, err := Simulate(cluster, jobs, Options{Policy: pol, Fairshare: seed%2 == 0})
		if err != nil {
			return false
		}
		if len(res.Results) != n {
			return false
		}
		for _, jr := range res.Results {
			if jr.Wait < 0 || jr.Start < jr.Job.Submit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || EASYBackfill.String() != "easy-backfill" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestJobsSorted(t *testing.T) {
	sorted := []trace.Job{mkJob(1, 0, 1, 1, 10), mkJob(2, 0, 1, 1, 10), mkJob(3, 5, 1, 1, 10)}
	if !JobsSorted(nil) || !JobsSorted(sorted[:1]) || !JobsSorted(sorted) {
		t.Fatal("sorted input reported unsorted")
	}
	bySubmit := []trace.Job{mkJob(1, 9, 1, 1, 10), mkJob(2, 3, 1, 1, 10)}
	byID := []trace.Job{mkJob(7, 0, 1, 1, 10), mkJob(2, 0, 1, 1, 10)}
	if JobsSorted(bySubmit) || JobsSorted(byID) {
		t.Fatal("unsorted input reported sorted")
	}
}

// TestSimulateOrderInvariant: feeding the same jobs pre-sorted (the
// fast path, no copy) and shuffled (copy+sort fallback) must produce
// identical schedules, and neither run may mutate the caller's slice.
func TestSimulateOrderInvariant(t *testing.T) {
	r := rng.New(11)
	jobs := make([]trace.Job, 0, 60)
	for i := 0; i < 60; i++ {
		j := mkJob(uint64(i+1), int64(r.Intn(5000)), 1+r.Intn(2), 1+r.Intn(8), int64(60+r.Intn(2000)))
		jobs = append(jobs, j)
	}
	shuffled := make([]trace.Job, len(jobs))
	copy(shuffled, jobs)
	rng.Shuffle(rng.New(12), shuffled)
	shuffledBefore := make([]trace.Job, len(shuffled))
	copy(shuffledBefore, shuffled)

	a, err := Simulate(smallCluster(), shuffled, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-sort into arrival order and run again via the no-copy path.
	presorted := make([]trace.Job, len(jobs))
	copy(presorted, shuffledBefore)
	sortJobsForTest(presorted)
	if !JobsSorted(presorted) {
		t.Fatal("test setup: presorted slice not sorted")
	}
	presortedBefore := make([]trace.Job, len(presorted))
	copy(presortedBefore, presorted)
	b, err := Simulate(smallCluster(), presorted, Options{Policy: EASYBackfill})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a.Results[i], b.Results[i])
		}
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("metrics differ: %+v vs %+v", a.Metrics, b.Metrics)
	}
	for i := range shuffled {
		if shuffled[i] != shuffledBefore[i] {
			t.Fatalf("Simulate mutated the shuffled input at %d", i)
		}
	}
	for i := range presorted {
		if presorted[i] != presortedBefore[i] {
			t.Fatalf("Simulate mutated the pre-sorted input at %d", i)
		}
	}
}

func sortJobsForTest(jobs []trace.Job) {
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0; j-- {
			a, b := jobs[j-1], jobs[j]
			if a.Submit > b.Submit || (a.Submit == b.Submit && a.ID > b.ID) {
				jobs[j-1], jobs[j] = b, a
			} else {
				break
			}
		}
	}
}
