package sched

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

// randomTrace generates a valid random workload scaled to the cluster:
// job widths up to roughly half the machine, bursts of equal submit
// times and equal limits to stress tie-breaking, and a GPU mix when the
// cluster has a GPU pool.
func randomTrace(r *rng.RNG, c Cluster, n int) []trace.Job {
	users := []string{"ada", "bob", "cam", "dee", "eve"}
	jobs := make([]trace.Job, 0, n)
	var lastSubmit int64
	for i := 0; i < n; i++ {
		submit := lastSubmit
		if !r.Bool(0.25) { // 25% exact ties with the previous arrival
			submit += int64(r.Intn(4000))
		}
		lastSubmit = submit
		elapsed := int64(1 + r.Intn(3000))
		limit := elapsed
		if !r.Bool(0.3) { // 30% exact-limit (timeout-shaped) jobs
			limit += int64(1 + r.Intn(1200))
		}
		j := trace.Job{
			ID: uint64(i + 1), User: users[r.Intn(len(users))], Account: "x",
			Partition: "cpu", Year: 2024, Submit: submit,
			Nodes: 1 + r.Intn(maxInt(1, c.CPUNodes/2)), CoresPer: 1 + r.Intn(c.CoresPerNode),
			Limit: limit, Elapsed: elapsed, State: trace.StateCompleted, Language: "c",
		}
		if c.GPUNodes > 0 && r.Bool(0.3) {
			j.Partition = "gpu"
			j.Nodes = 1 + r.Intn(maxInt(1, c.GPUNodes/2))
			j.GPUs = 1 + r.Intn(c.GPUsPerNode*j.Nodes)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestDifferentialOracle pins the determinism contract of the
// incremental simulator: across seeded random traces, all three
// policies, fairshare on and off, and both cluster shapes, the
// optimized fast path must produce Results identical to the naive
// reference oracle — same per-job outcomes, same utilization samples,
// same metrics, bit for bit.
func TestDifferentialOracle(t *testing.T) {
	clusters := []struct {
		name string
		c    Cluster
	}{
		{"small", smallCluster()},
		{"campus", DefaultCampusCluster()},
	}
	policies := []Policy{FCFS, EASYBackfill, ConservativeBackfill}
	const tracesPerCluster = 110 // ×2 clusters = 220 seeded traces ≥ the 200 the contract demands
	for _, cl := range clusters {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			for seed := uint64(0); seed < tracesPerCluster; seed++ {
				r := rng.New(seed*2654435761 + 17)
				jobs := randomTrace(r, cl.c, 20+r.Intn(80))
				for _, pol := range policies {
					opt := Options{Policy: pol, Fairshare: seed%2 == 0, UtilSampleEvery: 900}
					got, err := Simulate(cl.c, jobs, opt)
					if err != nil {
						t.Fatalf("seed %d %v: optimized: %v", seed, pol, err)
					}
					want, err := simulateOracle(cl.c, jobs, opt)
					if err != nil {
						t.Fatalf("seed %d %v: oracle: %v", seed, pol, err)
					}
					if err := diffResults(got, want); err != nil {
						t.Fatalf("seed %d %v fairshare=%v: optimized diverges from oracle: %v",
							seed, pol, opt.Fairshare, err)
					}
				}
			}
		})
	}
}

// diffResults reports the first divergence between two simulation
// outputs, or nil if they are identical.
func diffResults(got, want *Result) error {
	if len(got.Results) != len(want.Results) {
		return fmt.Errorf("result counts %d vs %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if got.Results[i] != want.Results[i] {
			return fmt.Errorf("result %d: %+v vs %+v", i, got.Results[i], want.Results[i])
		}
	}
	if len(got.Samples) != len(want.Samples) {
		return fmt.Errorf("sample counts %d vs %d", len(got.Samples), len(want.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			return fmt.Errorf("sample %d: %+v vs %+v", i, got.Samples[i], want.Samples[i])
		}
	}
	if got.Metrics != want.Metrics {
		return fmt.Errorf("metrics %+v vs %+v", got.Metrics, want.Metrics)
	}
	return nil
}

// TestOversizedJobErrNeverFits drives an oversized job through the
// conservative reservation path directly (bypassing Simulate's up-front
// validation, as a caller constructing sims by hand could) and asserts
// the typed ErrNeverFits error surfaces instead of the historical
// silent steady-state fallback.
func TestOversizedJobErrNeverFits(t *testing.T) {
	blocker := mkJob(1, 0, 4, 8, 1000) // fills the 32-core machine
	tooWide := mkJob(2, 10, 8, 8, 100) // 64 cores on a 32-core machine
	s := newSim(smallCluster(), []trace.Job{blocker, tooWide},
		Options{Policy: ConservativeBackfill, UtilSampleEvery: 3600})
	err := s.run()
	if err == nil {
		t.Fatal("oversized job reached a reservation without error")
	}
	if !errors.Is(err, ErrNeverFits) {
		t.Fatalf("error %v is not ErrNeverFits", err)
	}
}
