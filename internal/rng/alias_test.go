package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(21)
	const draws = 400000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(r)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := counts[i] / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d: got share %.4f want %.4f", i, got, want)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a := MustAlias([]float64{5})
	r := New(22)
	for i := 0; i < 100; i++ {
		if a.Draw(r) != 0 {
			t.Fatal("single-category alias drew nonzero index")
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := MustAlias([]float64{1, 0, 1})
	r := New(23)
	for i := 0; i < 100000; i++ {
		if a.Draw(r) == 1 {
			t.Fatal("zero-weight category drawn")
		}
	}
}

func TestAliasErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{-1, 2},
		{0, 0},
		{math.NaN()},
		{math.Inf(1)},
	}
	for i, ws := range cases {
		if _, err := NewAlias(ws); err == nil {
			t.Fatalf("case %d: expected error for %v", i, ws)
		}
	}
}

func TestMustAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlias did not panic on bad weights")
		}
	}()
	MustAlias(nil)
}

func TestCategoricalDeterministicAcrossMapOrder(t *testing.T) {
	w := map[string]float64{"python": 5, "c": 2, "fortran": 1, "r": 2}
	c1 := MustCategorical(w)
	c2 := MustCategorical(map[string]float64{"r": 2, "fortran": 1, "c": 2, "python": 5})
	r1, r2 := New(31), New(31)
	for i := 0; i < 1000; i++ {
		if c1.Draw(r1) != c2.Draw(r2) {
			t.Fatal("categorical draws depend on map construction order")
		}
	}
}

func TestCategoricalLabelsSorted(t *testing.T) {
	c := MustCategorical(map[string]float64{"b": 1, "a": 1, "c": 1})
	got := c.Labels()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels %v, want %v", got, want)
		}
	}
}

func TestCategoricalEmptyErrors(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Fatal("expected error for empty categorical")
	}
}

// Property: alias sampler never returns an out-of-range index.
func TestQuickAliasInRange(t *testing.T) {
	r := New(77)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		sum := 0.0
		for i, v := range raw {
			ws[i] = float64(v)
			sum += ws[i]
		}
		if sum == 0 {
			return true
		}
		a, err := NewAlias(ws)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			idx := a.Draw(r)
			if idx < 0 || idx >= len(ws) {
				return false
			}
			if ws[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	ws := make([]float64, 1000)
	for i := range ws {
		ws[i] = float64(i%17) + 1
	}
	a := MustAlias(ws)
	r := New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Draw(r)
	}
	_ = sink
}
