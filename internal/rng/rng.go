// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions the rcpt study apparatus needs.
//
// Reproducibility is a hard requirement for the study pipeline: every
// synthetic respondent, job trace, and module-load log must be regenerable
// bit-for-bit from a seed, including when generation is fanned out across
// a worker pool. The generator here is a SplitMix64-seeded xoshiro256**
// with an explicit Split operation that derives statistically independent
// child streams, so parallel generation order cannot perturb results.
package rng

import (
	"fmt"
	"math"
)

// RNG is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct with New or Split. RNG is not
// safe for concurrent use; give each goroutine its own stream via Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64 state expansion.
// Two generators built from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 expansion of any
	// seed yields one, but guard against the astronomically unlikely case.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewFromString returns a generator seeded from the FNV-1a hash of s.
// Useful for deriving named, stable sub-streams ("cohort-2024/jobs").
func NewFromString(s string) *RNG {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return New(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a child generator whose stream is statistically
// independent of the parent's subsequent output. The parent advances by
// exactly four draws, so splitting is itself deterministic.
func (r *RNG) Split() *RNG {
	c := &RNG{}
	for i := range c.s {
		// Re-mix each draw through SplitMix64 finalization so the child
		// state is not a window of the parent stream.
		z := r.Uint64() + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		c.s[i] = z ^ (z >> 31)
	}
	if c.s[0]|c.s[1]|c.s[2]|c.s[3] == 0 {
		c.s[0] = 1
	}
	return c
}

// SplitNamed derives a child stream keyed by name, independent of how many
// anonymous Splits have occurred. It does not advance the parent.
func (r *RNG) SplitNamed(name string) *RNG {
	child := NewFromString(name)
	for i := range child.s {
		child.s[i] ^= r.s[i]
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	// Decorrelate from both parents with a few warm-up draws.
	for i := 0; i < 4; i++ {
		child.Uint64()
	}
	return child
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method (unbiased). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n=0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. p outside [0,1] is clamped.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: Range called with hi=%g < lo=%g", hi, lo))
	}
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Box–Muller, polar form).
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation. A non-positive std returns mean exactly.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	if std <= 0 {
		return mean
	}
	return mean + std*r.Norm()
}

// LogNormal returns exp(N(mu, sigma)). Heavy-tailed; used for job
// walltimes and memory footprints.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormMeanStd(mu, sigma))
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
// It panics if lambda <= 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("rng: Exp called with lambda=%g", lambda))
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Pareto returns a Pareto(xm, alpha) variate: xm / U^(1/alpha).
// It panics if xm <= 0 or alpha <= 0.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("rng: Pareto called with xm=%g alpha=%g", xm, alpha))
	}
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda the PTRS-like normal
// approximation with rounding, adequate for workload synthesis.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction; clamp at 0.
	v := r.NormMeanStd(lambda, math.Sqrt(lambda))
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// Zipf samples ranks 1..n with P(k) proportional to 1/k^s using inverse
// transform over the precomputed harmonic table held by the Zipf struct.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s >= 0.
// It panics if n <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("rng: NewZipf called with n=%d", n))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws a rank in [0, n) (zero-based) from the Zipf distribution.
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes xs in place (Fisher–Yates).
func Shuffle[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Sample draws k distinct elements from xs uniformly without replacement
// (partial Fisher–Yates over a copy). If k >= len(xs) a shuffled copy of
// all elements is returned.
func Sample[T any](r *RNG, xs []T, k int) []T {
	cp := make([]T, len(xs))
	copy(cp, xs)
	if k >= len(cp) {
		Shuffle(r, cp)
		return cp
	}
	if k <= 0 {
		return nil
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:k:k]
}
