package rng

import (
	"fmt"
	"sort"
)

// Alias is a Walker alias-method sampler over a fixed categorical
// distribution: O(n) construction, O(1) per draw. It is the workhorse
// behind every "pick a language / field / job class with these
// probabilities" decision in the synthetic generators.
type Alias struct {
	prob  []float64
	alias []int
	n     int
}

// NewAlias builds an alias sampler from non-negative weights. Weights do
// not need to sum to 1. It returns an error if weights is empty, contains
// a negative or non-finite value, or sums to zero.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias sampler needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w || w > 1e308 {
			return nil, fmt.Errorf("rng: alias weight %d is invalid: %g", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: alias weights sum to zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
		n:     n,
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// MustAlias is NewAlias that panics on error; for static tables known to
// be valid at construction time.
func MustAlias(weights []float64) *Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(err)
	}
	return a
}

// N returns the number of categories.
func (a *Alias) N() int { return a.n }

// Draw samples a category index in O(1).
func (a *Alias) Draw(r *RNG) int {
	i := r.Intn(a.n)
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Categorical couples an alias sampler with string labels, the common
// case in survey and trace generation.
type Categorical struct {
	labels []string
	alias  *Alias
}

// NewCategorical builds a labeled sampler from a label→weight map. To keep
// construction deterministic regardless of map iteration order, labels are
// sorted before the alias table is built.
func NewCategorical(weights map[string]float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: categorical needs at least one label")
	}
	labels := make([]string, 0, len(weights))
	for l := range weights {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	ws := make([]float64, len(labels))
	for i, l := range labels {
		ws[i] = weights[l]
	}
	a, err := NewAlias(ws)
	if err != nil {
		return nil, err
	}
	return &Categorical{labels: labels, alias: a}, nil
}

// MustCategorical is NewCategorical that panics on error.
func MustCategorical(weights map[string]float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Draw samples a label.
func (c *Categorical) Draw(r *RNG) string {
	return c.labels[c.alias.Draw(r)]
}

// Labels returns the sorted label set (shared slice; do not mutate).
func (c *Categorical) Labels() []string { return c.labels }
