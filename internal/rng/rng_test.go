package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided on %d of 100 draws", same)
	}
}

func TestNewFromStringStable(t *testing.T) {
	a := NewFromString("cohort-2024")
	b := NewFromString("cohort-2024")
	c := NewFromString("cohort-2011")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same name gave different streams")
	}
	if a.Uint64() == c.Uint64() {
		t.Fatal("different names gave same stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Parent and child streams should not be trivially equal.
	equal := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("parent/child streams matched on %d of 100 draws", equal)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split children diverged at draw %d", i)
		}
	}
}

func TestSplitNamedDoesNotAdvanceParent(t *testing.T) {
	p1 := New(9)
	p2 := New(9)
	_ = p1.SplitNamed("jobs")
	for i := 0; i < 10; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatal("SplitNamed advanced the parent stream")
		}
	}
}

func TestSplitNamedDistinct(t *testing.T) {
	p := New(9)
	a := p.SplitNamed("a")
	b := p.SplitNamed("b")
	a2 := New(9).SplitNamed("a")
	if a.Uint64() == b.Uint64() {
		t.Fatal("named splits 'a' and 'b' coincide")
	}
	a = New(9).SplitNamed("a")
	for i := 0; i < 50; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("named split not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	for n := 1; n < 50; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUnbiasedish(t *testing.T) {
	// Chi-square goodness of fit on 10 buckets; loose bound.
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 dof, p=0.001 critical value ~27.9.
	if chi2 > 27.9 {
		t.Fatalf("uniformity chi2=%.2f too high; counts=%v", chi2, counts)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f too far from 1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const n = 200000
	lambda := 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(lambda)
		if v < 0 {
			t.Fatalf("negative exponential %g", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("exp mean %.4f, want %.4f", mean, 1/lambda)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(10)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("poisson(%g) mean %.3f", lambda, mean)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	r := New(1)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson with non-positive lambda should be 0")
	}
}

func TestParetoTail(t *testing.T) {
	r := New(11)
	xm, alpha := 2.0, 3.0
	for i := 0; i < 10000; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("pareto value %g below xm %g", v, xm)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(1, 0.8); v <= 0 {
			t.Fatalf("lognormal produced %g", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.1)
	r := New(13)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Rank(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf rank 0 count %d not above rank 50 count %d", counts[0], counts[50])
	}
	// Monotone-ish on average: head must dominate tail.
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := 90; i < 100; i++ {
		tail += counts[i]
	}
	if head < tail*5 {
		t.Fatalf("zipf head %d not dominating tail %d", head, tail)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := New(14)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Rank(r)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("s=0 zipf not uniform: bucket %d = %d", i, c)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(15)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	Shuffle(r, xs)
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 9 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestSample(t *testing.T) {
	r := New(16)
	xs := []string{"a", "b", "c", "d", "e"}
	got := Sample(r, xs, 3)
	if len(got) != 3 {
		t.Fatalf("sample size %d", len(got))
	}
	seen := map[string]bool{}
	for _, g := range got {
		if seen[g] {
			t.Fatalf("sample repeated %q", g)
		}
		seen[g] = true
	}
	if got := Sample(r, xs, 0); got != nil {
		t.Fatalf("Sample k=0 should be nil, got %v", got)
	}
	if got := Sample(r, xs, 99); len(got) != 5 {
		t.Fatalf("Sample k>len should return all, got %d", len(got))
	}
}

// Property: splitting at different points yields reproducible streams.
func TestQuickSplitReproducible(t *testing.T) {
	f := func(seed uint64, pre uint8) bool {
		a := New(seed)
		b := New(seed)
		for i := 0; i < int(pre); i++ {
			a.Uint64()
			b.Uint64()
		}
		ca, cb := a.Split(), b.Split()
		for i := 0; i < 16; i++ {
			if ca.Uint64() != cb.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Uint64n always in range for any positive bound.
func TestQuickUint64nRange(t *testing.T) {
	r := New(99)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Range stays within bounds.
func TestQuickRange(t *testing.T) {
	r := New(100)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if hi < lo {
			lo, hi = hi, lo
		}
		if math.IsInf(hi-lo, 0) {
			return true // span overflows float64; out of contract
		}
		v := r.Range(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}
