package weighting

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/survey"
)

// JackknifeResult carries a delete-a-group jackknife estimate.
type JackknifeResult struct {
	Estimate float64 // estimator on the full sample
	SE       float64 // jackknife standard error
	Groups   int
	// Replicates are the leave-one-group-out estimates, for diagnostics.
	Replicates []float64
}

// JackknifeSE estimates the standard error of an arbitrary weighted
// estimator by the delete-a-group jackknife: respondents are split into
// groups random groups (deterministic in r), the estimator is
// re-evaluated leaving each group out with the remaining weights scaled
// by G/(G-1), and the variance is (G-1)/G × Σ (θ_g − θ̄)².
//
// This is the standard design-based variance method when full replicate
// weights are unavailable. The estimator must not mutate the responses
// it is given; weights are restored before returning.
func JackknifeSE(r *rng.RNG, responses []*survey.Response, groups int,
	estimator func([]*survey.Response) float64) (JackknifeResult, error) {
	if len(responses) == 0 {
		return JackknifeResult{}, errors.New("weighting: jackknife on no responses")
	}
	if groups < 2 {
		return JackknifeResult{}, fmt.Errorf("weighting: jackknife needs >= 2 groups, got %d", groups)
	}
	if groups > len(responses) {
		return JackknifeResult{}, fmt.Errorf("weighting: %d groups for %d responses", groups, len(responses))
	}
	if estimator == nil {
		return JackknifeResult{}, errors.New("weighting: nil estimator")
	}
	full := estimator(responses)

	// Random group assignment, deterministic in r.
	assign := make([]int, len(responses))
	for i := range assign {
		assign[i] = i % groups
	}
	rng.Shuffle(r, assign)

	// Save weights so the scaling below is side-effect free.
	saved := make([]float64, len(responses))
	for i, resp := range responses {
		saved[i] = resp.Weight
	}
	defer func() {
		for i, resp := range responses {
			resp.Weight = saved[i]
		}
	}()

	scale := float64(groups) / float64(groups-1)
	reps := make([]float64, groups)
	for g := 0; g < groups; g++ {
		kept := make([]*survey.Response, 0, len(responses))
		for i, resp := range responses {
			if assign[i] == g {
				continue
			}
			resp.Weight = saved[i] * scale
			kept = append(kept, resp)
		}
		if len(kept) == 0 {
			return JackknifeResult{}, fmt.Errorf("weighting: jackknife group %d removed every response", g)
		}
		reps[g] = estimator(kept)
		// Restore weights before the next replicate.
		for i, resp := range responses {
			resp.Weight = saved[i]
		}
	}
	mean := 0.0
	for _, v := range reps {
		mean += v
	}
	mean /= float64(groups)
	ss := 0.0
	for _, v := range reps {
		d := v - mean
		ss += d * d
	}
	se := math.Sqrt(float64(groups-1) / float64(groups) * ss)
	return JackknifeResult{Estimate: full, SE: se, Groups: groups, Replicates: reps}, nil
}

// ShareEstimator returns an estimator closure for the weighted share of
// respondents selecting option on a choice question — the common
// jackknife target.
func ShareEstimator(ins *survey.Instrument, qid, option string) func([]*survey.Response) float64 {
	return func(rs []*survey.Response) float64 {
		q, ok := ins.Question(qid)
		if !ok {
			return math.NaN()
		}
		var hit, base float64
		for _, r := range rs {
			if !r.Has(qid) {
				continue
			}
			base += r.Weight
			selected := false
			if q.Kind == survey.SingleChoice {
				selected = r.Choice(qid) == option
			} else {
				selected = r.Selected(qid, option)
			}
			if selected {
				hit += r.Weight
			}
		}
		if base == 0 {
			return 0
		}
		return hit / base
	}
}
