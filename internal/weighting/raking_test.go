package weighting

import (
	"math"
	"testing"

	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/survey"
)

// tinyInstrument builds a 2-question instrument for hand-checkable
// raking tests.
func tinyInstrument(t *testing.T) *survey.Instrument {
	t.Helper()
	ins, err := survey.NewInstrument("tiny", []survey.Question{
		{ID: "g", Kind: survey.SingleChoice, Options: []string{"a", "b"}},
		{ID: "h", Kind: survey.SingleChoice, Options: []string{"x", "y"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func makeResp(id, g, h string) *survey.Response {
	r := survey.NewResponse(id, 2024)
	r.SetChoice("g", g)
	r.SetChoice("h", h)
	return r
}

func TestRakeSingleMarginExact(t *testing.T) {
	_ = tinyInstrument(t)
	// Sample: 3 "a", 1 "b". Target: 50/50.
	rs := []*survey.Response{
		makeResp("1", "a", "x"), makeResp("2", "a", "x"),
		makeResp("3", "a", "y"), makeResp("4", "b", "y"),
	}
	res, err := Rake(rs, []Margin{{QuestionID: "g", Target: map[string]float64{"a": 0.5, "b": 0.5}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Fatalf("single margin should converge in 1 iteration: %+v", res)
	}
	// Weighted share of "a" must be 0.5.
	wa, total := 0.0, 0.0
	for _, r := range rs {
		total += r.Weight
		if r.Choice("g") == "a" {
			wa += r.Weight
		}
	}
	if math.Abs(wa/total-0.5) > 1e-9 {
		t.Fatalf("a-share %.6f", wa/total)
	}
	// Weights average 1.
	if math.Abs(total/4-1) > 1e-9 {
		t.Fatalf("mean weight %.6f", total/4)
	}
	// "b" respondent carries 3x the weight of each "a" respondent.
	if math.Abs(rs[3].Weight/rs[0].Weight-3) > 1e-9 {
		t.Fatalf("weight ratio %g", rs[3].Weight/rs[0].Weight)
	}
}

func TestRakeTwoMarginsConverges(t *testing.T) {
	rs := []*survey.Response{
		makeResp("1", "a", "x"), makeResp("2", "a", "x"), makeResp("3", "a", "y"),
		makeResp("4", "b", "y"), makeResp("5", "b", "x"), makeResp("6", "a", "y"),
	}
	margins := []Margin{
		{QuestionID: "g", Target: map[string]float64{"a": 0.6, "b": 0.4}},
		{QuestionID: "h", Target: map[string]float64{"x": 0.3, "y": 0.7}},
	}
	res, err := Rake(rs, margins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.MaxDeviation > 1e-6 {
		t.Fatalf("deviation %g", res.MaxDeviation)
	}
	// Deviation trace is non-increasing overall (IPF converges here).
	first := res.DeviationTrace[0]
	last := res.DeviationTrace[len(res.DeviationTrace)-1]
	if last > first {
		t.Fatalf("trace rose: %v", res.DeviationTrace)
	}
}

func TestRakeErrors(t *testing.T) {
	rs := []*survey.Response{makeResp("1", "a", "x"), makeResp("2", "b", "y")}
	good := []Margin{{QuestionID: "g", Target: map[string]float64{"a": 0.5, "b": 0.5}}}
	if _, err := Rake(nil, good, Options{}); err == nil {
		t.Fatal("no responses accepted")
	}
	if _, err := Rake(rs, nil, Options{}); err == nil {
		t.Fatal("no margins accepted")
	}
	if _, err := Rake(rs, []Margin{{QuestionID: "", Target: map[string]float64{"a": 1}}}, Options{}); err == nil {
		t.Fatal("empty margin ID accepted")
	}
	if _, err := Rake(rs, []Margin{{QuestionID: "g", Target: map[string]float64{"a": 0.7, "b": 0.7}}}, Options{}); err == nil {
		t.Fatal("non-normalized target accepted")
	}
	if _, err := Rake(rs, []Margin{{QuestionID: "g", Target: map[string]float64{"a": 1.0, "b": 0.0}}}, Options{}); err == nil {
		t.Fatal("zero target accepted")
	}
	// Unanswered margin question.
	incomplete := survey.NewResponse("3", 2024)
	incomplete.SetChoice("g", "a")
	if _, err := Rake([]*survey.Response{incomplete}, []Margin{
		{QuestionID: "h", Target: map[string]float64{"x": 0.5, "y": 0.5}},
	}, Options{}); err == nil {
		t.Fatal("missing answer accepted")
	}
	// Category in sample missing from target.
	if _, err := Rake(rs, []Margin{{QuestionID: "g", Target: map[string]float64{"a": 0.5, "zz": 0.5}}}, Options{}); err == nil {
		t.Fatal("unknown sample category accepted")
	}
	// Target category with no respondents.
	onlyA := []*survey.Response{makeResp("1", "a", "x"), makeResp("2", "a", "y")}
	if _, err := Rake(onlyA, good, Options{}); err == nil {
		t.Fatal("empty target category accepted")
	}
	// Non-positive starting weight.
	bad := makeResp("1", "a", "x")
	bad.Weight = 0
	if _, err := Rake([]*survey.Response{bad, makeResp("2", "b", "x")}, good, Options{}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestRakeTrimming(t *testing.T) {
	// Heavily skewed sample: 19 "a", 1 "b", target 50/50 → the "b"
	// respondent would get weight ~10; trim to 3x mean.
	rs := make([]*survey.Response, 0, 20)
	for i := 0; i < 19; i++ {
		rs = append(rs, makeResp(string(rune('A'+i)), "a", "x"))
	}
	rs = append(rs, makeResp("Z", "b", "y"))
	margins := []Margin{{QuestionID: "g", Target: map[string]float64{"a": 0.5, "b": 0.5}}}
	res, err := Rake(rs, margins, Options{TrimRatio: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWeight > 3+1e-6 {
		t.Fatalf("max weight %g exceeds trim", res.MaxWeight)
	}
	// Trimming must be honest: deviation reopened and reported.
	if res.Converged {
		t.Fatalf("trimmed result claims convergence with deviation %g", res.MaxDeviation)
	}
}

func TestKishEffectiveN(t *testing.T) {
	rs := []*survey.Response{makeResp("1", "a", "x"), makeResp("2", "b", "y")}
	n, err := KishEffectiveN(rs)
	if err != nil || math.Abs(n-2) > 1e-12 {
		t.Fatalf("equal weights effective n=%g err=%v", n, err)
	}
	rs[0].Weight = 3
	n, _ = KishEffectiveN(rs)
	if n >= 2 || n <= 1 {
		t.Fatalf("unequal weights effective n=%g", n)
	}
	if _, err := KishEffectiveN(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestResetWeights(t *testing.T) {
	rs := []*survey.Response{makeResp("1", "a", "x")}
	rs[0].Weight = 7
	ResetWeights(rs)
	if rs[0].Weight != 1 {
		t.Fatal("reset failed")
	}
}

// Integration: rake a synthetic cohort back to its frame and verify the
// weighted field shares match the frame while unweighted ones do not.
func TestRakeCorrectsCohortBias(t *testing.T) {
	m := population.Model2024()
	g, err := population.NewGenerator(m)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := g.GenerateRespondents(rng.New(17), 2500)
	if err != nil {
		t.Fatal(err)
	}
	ins := g.Instrument()

	unweightedCS, _ := ins.Tabulate(survey.QField, rs)
	biasBefore := math.Abs(unweightedCS.Share("computer science") - m.FieldShare["computer science"])

	res, err := Rake(rs, FrameMargins(m.FieldShare, m.CareerShare), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("raking did not converge: %+v", res)
	}
	weighted, _ := ins.Tabulate(survey.QField, rs)
	biasAfter := math.Abs(weighted.Share("computer science") - m.FieldShare["computer science"])
	if biasAfter > 1e-6 {
		t.Fatalf("post-rake deviation %g", biasAfter)
	}
	if biasBefore < 0.01 {
		t.Fatalf("test fixture uninformative: pre-rake bias only %g", biasBefore)
	}
	if res.EffectiveN >= float64(len(rs)) {
		t.Fatalf("effective n %g not below raw n %d", res.EffectiveN, len(rs))
	}
	if res.DesignEffect <= 1 {
		t.Fatalf("design effect %g should exceed 1", res.DesignEffect)
	}
}

func TestRestrictToObserved(t *testing.T) {
	rs := []*survey.Response{makeResp("1", "a", "x"), makeResp("2", "a", "y")}
	m := Margin{QuestionID: "g", Target: map[string]float64{"a": 0.5, "b": 0.5}}
	// Only "a" observed: fewer than 2 categories remain -> error.
	if _, err := RestrictToObserved(m, rs); err == nil {
		t.Fatal("single observed category accepted")
	}
	rs = append(rs, makeResp("3", "b", "x"))
	got, err := RestrictToObserved(m, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Target) != 2 {
		t.Fatalf("target %v", got.Target)
	}
	// Three-category margin with one unobserved collapses and renormalizes.
	m3 := Margin{QuestionID: "g", Target: map[string]float64{"a": 0.25, "b": 0.25, "zz": 0.5}}
	got, err = RestrictToObserved(m3, rs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Target["a"]-0.5) > 1e-12 || math.Abs(got.Target["b"]-0.5) > 1e-12 {
		t.Fatalf("renormalized %v", got.Target)
	}
	// Unanswered question.
	blank := survey.NewResponse("z", 2024)
	if _, err := RestrictToObserved(m, []*survey.Response{blank}); err == nil {
		t.Fatal("unanswered margin accepted")
	}
	// Raking with the restricted margin converges.
	if _, err := Rake(rs, []Margin{got}, Options{}); err != nil {
		t.Fatal(err)
	}
}
