// Package weighting implements survey post-stratification: design
// weights, raking (iterative proportional fitting) to known population
// margins, weight trimming, and effective-sample-size diagnostics.
// Raking is what lets the biased respondent pool (CS over-responds,
// faculty under-respond) produce estimates representative of the
// institutional frame.
package weighting

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/survey"
)

// Margin is one raking dimension: a question whose single-choice answer
// classifies respondents, and the target population share per category.
type Margin struct {
	QuestionID string
	Target     map[string]float64 // category -> population share, sums to 1
}

// validate checks the margin's shares.
func (m Margin) validate() error {
	if m.QuestionID == "" {
		return errors.New("weighting: margin has empty question ID")
	}
	if len(m.Target) < 2 {
		return fmt.Errorf("weighting: margin %q needs >= 2 categories", m.QuestionID)
	}
	// Sum shares in sorted-key order: float addition is not associative,
	// so folding in map iteration order would make the tolerance check
	// below depend on the run (the maporder lint rule).
	cats := make([]string, 0, len(m.Target))
	for cat := range m.Target {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	sum := 0.0
	for _, cat := range cats {
		share := m.Target[cat]
		if share < 0 {
			return fmt.Errorf("weighting: margin %q category %q has negative share %g", m.QuestionID, cat, share)
		}
		if share == 0 {
			return fmt.Errorf("weighting: margin %q category %q has zero target; drop it instead", m.QuestionID, cat)
		}
		sum += share
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("weighting: margin %q targets sum to %g, want 1", m.QuestionID, sum)
	}
	return nil
}

// Options configures Rake.
type Options struct {
	MaxIterations int     // default 100
	Tolerance     float64 // max abs deviation of achieved vs target share; default 1e-6
	TrimRatio     float64 // post-raking cap on weight / mean weight; 0 disables
}

// Result reports raking diagnostics.
type Result struct {
	Iterations   int
	Converged    bool
	MaxDeviation float64 // worst margin deviation at exit
	EffectiveN   float64 // Kish effective sample size after raking
	DesignEffect float64 // n / EffectiveN
	MinWeight    float64
	MaxWeight    float64
	// DeviationTrace records MaxDeviation after each iteration, the
	// series plotted by figure R-F8.
	DeviationTrace []float64
}

// Rake adjusts the Weight field of responses in place so that weighted
// category shares match every margin's target, normalized so weights
// average 1. Respondents missing an answer to any margin question are
// an error: raking needs complete classification.
func Rake(responses []*survey.Response, margins []Margin, opt Options) (Result, error) {
	if len(responses) == 0 {
		return Result{}, errors.New("weighting: no responses")
	}
	if len(margins) == 0 {
		return Result{}, errors.New("weighting: no margins")
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 100
	}
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1e-6
	}
	for _, m := range margins {
		if err := m.validate(); err != nil {
			return Result{}, err
		}
	}
	// Pre-resolve each respondent's category per margin, and verify the
	// sample covers every target category (otherwise IPF cannot converge).
	cats := make([][]string, len(margins))
	for mi, m := range margins {
		cats[mi] = make([]string, len(responses))
		seen := map[string]bool{}
		for ri, r := range responses {
			c := r.Choice(m.QuestionID)
			if c == "" {
				return Result{}, fmt.Errorf("weighting: response %q missing margin answer %q", r.ID, m.QuestionID)
			}
			if _, ok := m.Target[c]; !ok {
				return Result{}, fmt.Errorf("weighting: response %q category %q absent from margin %q targets", r.ID, c, m.QuestionID)
			}
			cats[mi][ri] = c
			seen[c] = true
		}
		for cat := range m.Target {
			if !seen[cat] {
				return Result{}, fmt.Errorf("weighting: margin %q category %q has no respondents", m.QuestionID, cat)
			}
		}
	}
	// Start from current weights (design weights if the caller set them,
	// else 1 from NewResponse).
	w := make([]float64, len(responses))
	for i, r := range responses {
		if r.Weight <= 0 {
			return Result{}, fmt.Errorf("weighting: response %q has non-positive weight %g", r.ID, r.Weight)
		}
		w[i] = r.Weight
	}

	res := Result{}
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		for mi, m := range margins {
			// Current weighted share per category.
			total := 0.0
			byCat := map[string]float64{}
			for ri := range responses {
				total += w[ri]
				byCat[cats[mi][ri]] += w[ri]
			}
			// Multiply each respondent's weight by target/current.
			for ri := range responses {
				c := cats[mi][ri]
				cur := byCat[c] / total
				w[ri] *= m.Target[c] / cur
			}
		}
		dev := maxDeviation(w, cats, margins)
		res.DeviationTrace = append(res.DeviationTrace, dev)
		res.Iterations = iter
		res.MaxDeviation = dev
		if dev <= opt.Tolerance {
			res.Converged = true
			break
		}
	}

	// Normalize to mean 1, then trim if requested (trimming can reopen a
	// small deviation; report post-trim deviation honestly).
	normalize(w)
	if opt.TrimRatio > 0 {
		// Trim and renormalize to a fixed point: renormalizing after a
		// trim raises weights again, so repeat until the cap holds at
		// mean weight 1 (bounded; each pass strictly shrinks the excess).
		limit := opt.TrimRatio
		for pass := 0; pass < 100; pass++ {
			over := false
			for i := range w {
				if w[i] > limit {
					w[i] = limit
					over = true
				}
			}
			normalize(w)
			if !over {
				break
			}
			stillOver := false
			for i := range w {
				if w[i] > limit*(1+1e-9) {
					stillOver = true
					break
				}
			}
			if !stillOver {
				break
			}
		}
		res.MaxDeviation = maxDeviation(w, cats, margins)
		res.Converged = res.MaxDeviation <= opt.Tolerance
	}

	// Diagnostics.
	sum, sumsq := 0.0, 0.0
	res.MinWeight, res.MaxWeight = math.Inf(1), math.Inf(-1)
	for _, wi := range w {
		sum += wi
		sumsq += wi * wi
		res.MinWeight = math.Min(res.MinWeight, wi)
		res.MaxWeight = math.Max(res.MaxWeight, wi)
	}
	res.EffectiveN = sum * sum / sumsq
	res.DesignEffect = float64(len(w)) / res.EffectiveN

	for i, r := range responses {
		r.Weight = w[i]
	}
	return res, nil
}

// maxDeviation returns the worst |achieved - target| share across all
// margin categories.
func maxDeviation(w []float64, cats [][]string, margins []Margin) float64 {
	worst := 0.0
	for mi, m := range margins {
		total := 0.0
		byCat := map[string]float64{}
		for ri, wi := range w {
			total += wi
			byCat[cats[mi][ri]] += wi
		}
		for cat, target := range m.Target {
			d := math.Abs(byCat[cat]/total - target)
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// normalize scales weights to mean 1.
func normalize(w []float64) {
	sum := 0.0
	for _, wi := range w {
		sum += wi
	}
	mean := sum / float64(len(w))
	for i := range w {
		w[i] /= mean
	}
}

// ResetWeights sets every response weight to 1 (the unweighted
// baseline used by the ablation).
func ResetWeights(responses []*survey.Response) {
	for _, r := range responses {
		r.Weight = 1
	}
}

// KishEffectiveN returns the Kish effective sample size of the current
// weights without modifying anything.
func KishEffectiveN(responses []*survey.Response) (float64, error) {
	if len(responses) == 0 {
		return 0, errors.New("weighting: no responses")
	}
	sum, sumsq := 0.0, 0.0
	for _, r := range responses {
		if r.Weight < 0 {
			return 0, fmt.Errorf("weighting: response %q has negative weight", r.ID)
		}
		sum += r.Weight
		sumsq += r.Weight * r.Weight
	}
	if sumsq == 0 {
		return 0, errors.New("weighting: all weights zero")
	}
	return sum * sum / sumsq, nil
}

// FrameMargins builds the standard rcpt raking margins (field and career
// stage) from a population model's frame shares.
func FrameMargins(fieldShare, careerShare map[string]float64) []Margin {
	return []Margin{
		{QuestionID: survey.QField, Target: fieldShare},
		{QuestionID: survey.QCareer, Target: careerShare},
	}
}

// RestrictToObserved returns a copy of the margin with categories that
// have no respondents removed and the remaining targets renormalized to
// sum to 1 — the standard small-sample fallback (collapsing empty
// strata) that keeps raking feasible on small cohorts. An error is
// returned when fewer than two observed categories remain or when the
// question is unanswered by everyone.
func RestrictToObserved(m Margin, responses []*survey.Response) (Margin, error) {
	observed := map[string]bool{}
	for _, r := range responses {
		if c := r.Choice(m.QuestionID); c != "" {
			observed[c] = true
		}
	}
	if len(observed) == 0 {
		return Margin{}, fmt.Errorf("weighting: nobody answered %q", m.QuestionID)
	}
	// Iterate categories in sorted order: summing in map order would make
	// the normalization differ across calls at the ulp level, breaking
	// bit-for-bit reproducibility of the downstream weights.
	cats := make([]string, 0, len(m.Target))
	for cat := range m.Target {
		if observed[cat] {
			cats = append(cats, cat)
		}
	}
	sort.Strings(cats)
	if len(cats) < 2 {
		return Margin{}, fmt.Errorf("weighting: margin %q has %d observed categories, need >= 2", m.QuestionID, len(cats))
	}
	total := 0.0
	for _, cat := range cats {
		total += m.Target[cat]
	}
	if total <= 0 {
		return Margin{}, fmt.Errorf("weighting: margin %q observed targets sum to %g", m.QuestionID, total)
	}
	kept := make(map[string]float64, len(cats))
	for _, cat := range cats {
		kept[cat] = m.Target[cat] / total
	}
	return Margin{QuestionID: m.QuestionID, Target: kept}, nil
}
