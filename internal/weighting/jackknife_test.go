package weighting

import (
	"math"
	"testing"

	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/survey"
)

func TestJackknifeSEOnKnownProportion(t *testing.T) {
	// Bernoulli(0.3) sample of n=800: analytic SE = sqrt(p(1-p)/n) ≈ 0.0162.
	g, err := population.NewGenerator(population.Model2024())
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	ins, err := survey.NewInstrument("jk", []survey.Question{
		{ID: "flag", Kind: survey.SingleChoice, Options: []string{"yes", "no"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	n := 800
	rs := make([]*survey.Response, n)
	for i := range rs {
		resp := survey.NewResponse(string(rune('a'+i%26))+string(rune('0'+i%10)), 2024)
		if r.Bool(0.3) {
			resp.SetChoice("flag", "yes")
		} else {
			resp.SetChoice("flag", "no")
		}
		rs[i] = resp
	}
	est := ShareEstimator(ins, "flag", "yes")
	res, err := JackknifeSE(rng.New(9), rs, 40, est)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Estimate
	analytic := math.Sqrt(p * (1 - p) / float64(n))
	if math.Abs(res.SE-analytic) > analytic {
		t.Fatalf("jackknife SE %.5f far from analytic %.5f", res.SE, analytic)
	}
	if res.SE <= 0 {
		t.Fatalf("se=%g", res.SE)
	}
	if len(res.Replicates) != 40 {
		t.Fatalf("%d replicates", len(res.Replicates))
	}
}

func TestJackknifeRestoresWeights(t *testing.T) {
	ins, _ := survey.NewInstrument("jk", []survey.Question{
		{ID: "flag", Kind: survey.SingleChoice, Options: []string{"yes", "no"}},
	})
	rs := make([]*survey.Response, 20)
	for i := range rs {
		resp := survey.NewResponse(string(rune('a'+i)), 2024)
		resp.SetChoice("flag", "yes")
		resp.Weight = 1 + float64(i)
		rs[i] = resp
	}
	_, err := JackknifeSE(rng.New(1), rs, 4, ShareEstimator(ins, "flag", "yes"))
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range rs {
		if resp.Weight != 1+float64(i) {
			t.Fatalf("weight %d not restored: %g", i, resp.Weight)
		}
	}
}

func TestJackknifeErrors(t *testing.T) {
	ins, _ := survey.NewInstrument("jk", []survey.Question{
		{ID: "flag", Kind: survey.SingleChoice, Options: []string{"yes", "no"}},
	})
	est := ShareEstimator(ins, "flag", "yes")
	one := []*survey.Response{survey.NewResponse("a", 2024)}
	if _, err := JackknifeSE(rng.New(1), nil, 4, est); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := JackknifeSE(rng.New(1), one, 1, est); err == nil {
		t.Fatal("1 group accepted")
	}
	if _, err := JackknifeSE(rng.New(1), one, 5, est); err == nil {
		t.Fatal("groups > n accepted")
	}
	if _, err := JackknifeSE(rng.New(1), one, 2, nil); err == nil {
		t.Fatal("nil estimator accepted")
	}
}

func TestShareEstimatorMultiChoice(t *testing.T) {
	ins, _ := survey.NewInstrument("jk", []survey.Question{
		{ID: "langs", Kind: survey.MultiChoice, Options: []string{"python", "c"}},
	})
	a := survey.NewResponse("a", 2024)
	a.SetChoices("langs", []string{"python", "c"})
	b := survey.NewResponse("b", 2024)
	b.SetChoices("langs", []string{"c"})
	c := survey.NewResponse("c", 2024) // unanswered, excluded from base
	est := ShareEstimator(ins, "langs", "python")
	if got := est([]*survey.Response{a, b, c}); got != 0.5 {
		t.Fatalf("share %g", got)
	}
	if got := est(nil); got != 0 {
		t.Fatalf("empty share %g", got)
	}
	bad := ShareEstimator(ins, "missing", "python")
	if !math.IsNaN(bad([]*survey.Response{a})) {
		t.Fatal("unknown question should yield NaN")
	}
}

func TestJackknifeDeterministic(t *testing.T) {
	ins, _ := survey.NewInstrument("jk", []survey.Question{
		{ID: "flag", Kind: survey.SingleChoice, Options: []string{"yes", "no"}},
	})
	r := rng.New(2)
	rs := make([]*survey.Response, 100)
	for i := range rs {
		resp := survey.NewResponse(string(rune('a'+i%26))+string(rune('A'+i/26)), 2024)
		if r.Bool(0.4) {
			resp.SetChoice("flag", "yes")
		} else {
			resp.SetChoice("flag", "no")
		}
		rs[i] = resp
	}
	est := ShareEstimator(ins, "flag", "yes")
	a, err := JackknifeSE(rng.New(7), rs, 10, est)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := JackknifeSE(rng.New(7), rs, 10, est)
	if a.SE != b.SE || a.Estimate != b.Estimate {
		t.Fatal("jackknife not deterministic")
	}
}
