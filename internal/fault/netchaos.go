package fault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Transport chaos: the stage-fault idea applied to the cluster's peer
// traffic. A NetInjector wraps the peer http.RoundTripper and decides —
// as a pure function of seed×(src,dst)×attempt — whether a request is
// dropped, delayed, duplicated, or blocked by a partition. Determinism
// is the whole point: the partition suite replays the same weather
// every run, so "faults cost latency, never bytes" is a reproducible
// assertion, not a flake lottery. Partitions come in two forms: seeded
// (NetPartitionProb severs a directed link for the process lifetime,
// drawn once per link) and scripted (SetPartition/Heal, which the chaos
// tests use to stage split-brain and recovery on cue).

// ErrNetInjected is the cause of every injected transport fault, so
// tests and fallback paths can tell synthetic network weather from real
// failures with errors.Is.
var ErrNetInjected = errors.New("fault: injected network fault")

// NetDecision is what the injector decided for one request.
type NetDecision int

const (
	NetNone NetDecision = iota
	NetDrop
	NetDup
	NetDelay
)

func (d NetDecision) String() string {
	switch d {
	case NetDrop:
		return "drop"
	case NetDup:
		return "dup"
	case NetDelay:
		return "delay"
	default:
		return "none"
	}
}

// NetInjector injects transport faults into requests leaving one
// replica. src is the replica's own normalized base URL: it salts the
// decision stream so each replica in a ring sees different — but
// individually reproducible — weather from the same spec.
type NetInjector struct {
	spec Spec
	src  string
	root *rng.RNG

	mu       sync.Mutex
	attempts map[string]uint64 // per-destination request counter
	groups   map[string]int    // scripted partition: base URL -> group

	drops   atomic.Int64
	dups    atomic.Int64
	delays  atomic.Int64
	blocked atomic.Int64
}

// NewNet builds a transport injector for spec. The spec must validate;
// src must be non-empty (it anchors the decision stream).
func NewNet(spec Spec, src string) (*NetInjector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if src == "" {
		return nil, fmt.Errorf("fault: net injector needs a src identity")
	}
	return &NetInjector{
		spec:     spec,
		src:      src,
		root:     rng.New(spec.Seed),
		attempts: map[string]uint64{},
	}, nil
}

// SetPartition scripts a partition: members of different groups cannot
// reach each other; members of the same group (and hosts in no group)
// are unaffected. Replaces any previous script.
func (n *NetInjector) SetPartition(groups ...[]string) {
	m := map[string]int{}
	for i, g := range groups {
		for _, host := range g {
			m[host] = i
		}
	}
	n.mu.Lock()
	n.groups = m
	n.mu.Unlock()
}

// Heal lifts a scripted partition. Seeded link cuts (NetPartitionProb)
// are permanent by design and unaffected.
func (n *NetInjector) Heal() {
	n.mu.Lock()
	n.groups = nil
	n.mu.Unlock()
}

// Blocked reports whether the src→dst link is currently severed, by
// script or by seeded partition. The seeded draw uses no attempt term:
// a cut link is cut for every request, which is what a partition is.
func (n *NetInjector) Blocked(dst string) bool {
	n.mu.Lock()
	groups := n.groups
	n.mu.Unlock()
	if groups != nil {
		sg, sok := groups[n.src]
		dg, dok := groups[dst]
		if sok && dok && sg != dg {
			return true
		}
	}
	if n.spec.NetPartitionProb > 0 {
		u := n.root.SplitNamed("partition/" + n.src + "|" + dst).Float64()
		if u < n.spec.NetPartitionProb {
			return true
		}
	}
	return false
}

// Decide returns the fault for the next request to dst, advancing the
// per-link attempt counter. Pure per (seed, src, dst, attempt): replay
// the same request sequence and the same faults fire at the same
// attempts regardless of timing or interleaving with other links.
func (n *NetInjector) Decide(dst string) NetDecision {
	n.mu.Lock()
	attempt := n.attempts[dst]
	n.attempts[dst] = attempt + 1
	n.mu.Unlock()
	return n.decideAt(dst, attempt)
}

// decideAt is the pure decision function (exposed to tests via Decide's
// counter; the chaos suite asserts two injectors with the same seed and
// src produce identical streams).
func (n *NetInjector) decideAt(dst string, attempt uint64) NetDecision {
	u := n.root.SplitNamed(fmt.Sprintf("net/%s|%s/attempt-%d", n.src, dst, attempt)).Float64()
	switch {
	case u < n.spec.NetDropProb:
		return NetDrop
	case u < n.spec.NetDropProb+n.spec.NetDupProb:
		return NetDup
	case u < n.spec.NetDropProb+n.spec.NetDupProb+n.spec.NetDelayProb:
		return NetDelay
	default:
		return NetNone
	}
}

// NetCounts reports how many faults of each kind have fired.
func (n *NetInjector) NetCounts() (drops, dups, delays, blocked int64) {
	return n.drops.Load(), n.dups.Load(), n.delays.Load(), n.blocked.Load()
}

// RoundTripper wraps base with the injector. The destination identity
// is the request's scheme://host — the same normalized form the cluster
// uses for peer names — so link decisions line up with ring members.
func (n *NetInjector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &chaosTransport{in: n, base: base}
}

type chaosTransport struct {
	in   *NetInjector
	base http.RoundTripper
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	dst := req.URL.Scheme + "://" + req.URL.Host
	if t.in.Blocked(dst) {
		t.in.blocked.Add(1)
		return nil, fmt.Errorf("%w: partition %s -> %s", ErrNetInjected, t.in.src, dst)
	}
	switch t.in.Decide(dst) {
	case NetDrop:
		t.in.drops.Add(1)
		return nil, fmt.Errorf("%w: dropped %s -> %s", ErrNetInjected, t.in.src, dst)
	case NetDup:
		// Send a duplicate first and discard its response — the receiver
		// sees the request twice, which is what the network can do to
		// anyone. Requests whose body cannot be replayed (no GetBody)
		// skip the duplicate; the primary send below is untouched.
		if clone := cloneRequest(req); clone != nil {
			t.in.dups.Add(1)
			if resp, err := t.base.RoundTrip(clone); err == nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				_ = resp.Body.Close()
			}
		}
	case NetDelay:
		t.in.delays.Add(1)
		if d := t.in.spec.NetDelay; d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-req.Context().Done():
				timer.Stop()
				return nil, req.Context().Err()
			case <-timer.C:
			}
		}
	}
	return t.base.RoundTrip(req)
}

// cloneRequest copies req with a replayable body, or returns nil when
// the body cannot be replayed.
func cloneRequest(req *http.Request) *http.Request {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return clone
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	clone.Body = body
	return clone
}
