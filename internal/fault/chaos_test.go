//go:build chaos

package fault

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/table"
	"repro/internal/trace"
)

// chaosConfig keeps three full pipeline runs cheap under -race.
func chaosConfig(workers int) core.Config {
	return core.Config{
		Seed:       99,
		N2011:      40,
		N2024:      60,
		TraceYears: []int{2011, 2012},
		SimYear:    2012,
		Policy:     sched.EASYBackfill,
		Rake:       true,
		PanelN:     30,
		NoiseRate:  0.05,
		Workers:    workers,
	}
}

// TestChaosArtifactsByteIdenticalAcrossWorkers is the acceptance test
// of the determinism-under-chaos argument: with panics, errors, and
// latency spikes injected at a fixed seed and stages retried, the
// pipeline must produce artifacts byte-identical to a clean run, for
// every worker count.
func TestChaosArtifactsByteIdenticalAcrossWorkers(t *testing.T) {
	clean, err := core.Run(chaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cleanAccounting := serializeAccounting(t, clean)

	for _, workers := range []int{1, 2, 4} {
		in, err := New(Spec{
			Seed:      12345,
			PanicProb: 0.12, ErrorProb: 0.12, LatencyProb: 0.2,
			Latency: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		arts, err := core.RunWithOptions(context.Background(), chaosConfig(workers), core.RunOptions{
			Middleware: in.Middleware(),
			Retry:      parallel.RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatalf("workers=%d: run failed under injection: %v", workers, err)
		}
		p, e, d := in.Counts()
		if p+e+d == 0 {
			t.Fatalf("workers=%d: injector fired nothing; chaos test is vacuous", workers)
		}
		t.Logf("workers=%d: injected %d panics, %d errors, %d delays over %d attempts", workers, p, e, d, in.Attempts())

		if !reflect.DeepEqual(jobRows(t, clean), jobRows(t, arts)) ||
			!reflect.DeepEqual(clean.Cohort2024, arts.Cohort2024) ||
			!reflect.DeepEqual(clean.Rake2024, arts.Rake2024) ||
			!reflect.DeepEqual(clean.Panel, arts.Panel) ||
			!reflect.DeepEqual(clean.Sim, arts.Sim) ||
			!reflect.DeepEqual(clean.ModAgg, arts.ModAgg) {
			t.Fatalf("workers=%d: artifacts diverged under chaos", workers)
		}
		if got := serializeAccounting(t, arts); !bytes.Equal(cleanAccounting, got) {
			t.Fatalf("workers=%d: serialized accounting diverged under chaos", workers)
		}
	}
}

func jobRows(t *testing.T, a *core.Artifacts) []trace.Job {
	t.Helper()
	rows, err := table.Rows[trace.Job](a.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func serializeAccounting(t *testing.T, a *core.Artifacts) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Instrument.WriteJSON(&buf, a.Cohort2024); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosExhaustedRetriesYieldTypedError: a stage failing on every
// attempt surfaces as a *parallel.StageError with stage attribution and
// ErrInjected as the cause — never a crash, never an anonymous error.
func TestChaosExhaustedRetriesYieldTypedError(t *testing.T) {
	in, err := New(Spec{Seed: 1, ErrorProb: 1, Stages: []string{"trace-2012"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.RunWithOptions(context.Background(), chaosConfig(2), core.RunOptions{
		Middleware: in.Middleware(),
		Retry:      parallel.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond},
	})
	var se *parallel.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err=%T %v, want *parallel.StageError", err, err)
	}
	if se.Stage != "trace-2012" || se.Attempt != 3 {
		t.Fatalf("StageError=%+v", se)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cause is not ErrInjected: %v", err)
	}
}

// TestChaosInjectedPanicIsIsolated: a 100%-panic stage with no retries
// fails the run with a typed, stack-bearing error; the process (and
// therefore a daemon embedding the pipeline) survives.
func TestChaosInjectedPanicIsIsolated(t *testing.T) {
	in, err := New(Spec{Seed: 1, PanicProb: 1, Stages: []string{"rake-2024"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.RunWithOptions(context.Background(), chaosConfig(4), core.RunOptions{
		Middleware: in.Middleware(),
	})
	var se *parallel.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err=%T %v, want *parallel.StageError", err, err)
	}
	if !se.Panicked || se.Stage != "rake-2024" || se.Stack == "" {
		t.Fatalf("StageError=%+v", se)
	}
}

// TestChaosCancellationUnderInjection: cancelling mid-run under heavy
// latency injection returns promptly with ctx.Err and strands nothing.
func TestChaosCancellationUnderInjection(t *testing.T) {
	in, err := New(Spec{Seed: 2, LatencyProb: 1, Latency: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = core.RunWithOptions(ctx, chaosConfig(4), core.RunOptions{Middleware: in.Middleware()})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
}

// TestChaosEventsAttributeFaults: every injected panic surfaces as an
// EventPanic for the right stage, and retries are announced.
func TestChaosEventsAttributeFaults(t *testing.T) {
	in, err := New(Spec{Seed: 9, PanicProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan parallel.Event, 1024)
	_, err = core.RunWithOptions(context.Background(), chaosConfig(2), core.RunOptions{
		Middleware: in.Middleware(),
		Events:     func(ev parallel.Event) { events <- ev },
		Retry:      parallel.RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	close(events)
	var panics, retries int
	for ev := range events {
		switch ev.Kind {
		case parallel.EventPanic:
			panics++
			if ev.Stage == "" || ev.Err == nil {
				t.Fatalf("panic event missing attribution: %+v", ev)
			}
		case parallel.EventRetry:
			retries++
		}
	}
	p, _, _ := in.Counts()
	if int64(panics) != p {
		t.Fatalf("panic events=%d, injector panics=%d", panics, p)
	}
	if retries < panics {
		t.Fatalf("retries=%d < panics=%d: every recovered panic should schedule a retry here", retries, panics)
	}
}
