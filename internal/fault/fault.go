// Package fault is a deterministic fault-injection harness for the
// pipeline's stage graph. An Injector decides — as a pure function of
// (seed, stage name, attempt number) — whether a given stage attempt
// panics, fails with ErrInjected, or is delayed, and applies that
// decision through a parallel.StageMiddleware at the attempt boundary,
// before the stage body runs. Because the decision stream is split off
// its own seed by name, injected chaos is byte-reproducible: the same
// spec produces the same faults at the same attempts for any worker
// count, which is what lets the chaos suite assert that artifacts stay
// byte-identical while stages are panicking and being retried.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// ErrInjected is the cause of every injected stage error, so tests and
// callers can tell synthetic faults from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Spec configures an Injector. Probabilities are evaluated in order
// panic → error → latency from a single uniform draw per (stage,
// attempt): PanicProb+ErrorProb+LatencyProb should not exceed 1.
type Spec struct {
	// Seed of the injector's own rng root; independent of the pipeline
	// seed so chaos placement never perturbs generation streams.
	Seed uint64
	// Stages restricts injection to the named stages (nil/empty = all).
	Stages []string
	// PanicProb is the probability a stage attempt panics.
	PanicProb float64
	// ErrorProb is the probability a stage attempt fails with ErrInjected.
	ErrorProb float64
	// LatencyProb is the probability a stage attempt is delayed by
	// Latency before running (the attempt then proceeds normally).
	LatencyProb float64
	// Latency is the injected delay for latency faults.
	Latency time.Duration

	// Transport faults (netchaos.go), evaluated per peer request from a
	// single uniform draw in order drop → duplicate → delay:
	// NetDropProb+NetDupProb+NetDelayProb should not exceed 1.
	NetDropProb  float64
	NetDupProb   float64
	NetDelayProb float64
	// NetDelay is the injected delay for delayed requests.
	NetDelay time.Duration
	// NetPartitionProb is the probability a directed (src,dst) link is
	// severed for the life of the process — drawn once per link, not per
	// request, so a partitioned pair stays partitioned.
	NetPartitionProb float64
}

// Validate checks the spec's probabilities.
func (s Spec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"panic", s.PanicProb}, {"error", s.ErrorProb}, {"latency", s.LatencyProb},
		{"netdrop", s.NetDropProb}, {"netdup", s.NetDupProb}, {"netdelay", s.NetDelayProb},
		{"netpart", s.NetPartitionProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s probability %g out of [0,1]", p.name, p.v)
		}
	}
	if sum := s.PanicProb + s.ErrorProb + s.LatencyProb; sum > 1 {
		return fmt.Errorf("fault: probabilities sum to %g > 1", sum)
	}
	if sum := s.NetDropProb + s.NetDupProb + s.NetDelayProb; sum > 1 {
		return fmt.Errorf("fault: net probabilities sum to %g > 1", sum)
	}
	if s.Latency < 0 {
		return fmt.Errorf("fault: negative latency %v", s.Latency)
	}
	if s.NetDelay < 0 {
		return fmt.Errorf("fault: negative net delay %v", s.NetDelay)
	}
	return nil
}

// Enabled reports whether the spec injects stage faults.
func (s Spec) Enabled() bool {
	return s.PanicProb > 0 || s.ErrorProb > 0 || s.LatencyProb > 0
}

// NetEnabled reports whether the spec injects transport faults.
func (s Spec) NetEnabled() bool {
	return s.NetDropProb > 0 || s.NetDupProb > 0 || s.NetDelayProb > 0 || s.NetPartitionProb > 0
}

// Decision is what an Injector decided for one stage attempt.
type Decision int

const (
	None Decision = iota
	Panic
	Error
	Latency
)

func (d Decision) String() string {
	switch d {
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Latency:
		return "latency"
	default:
		return "none"
	}
}

// Injector applies a Spec to stage attempts. Safe for concurrent use:
// decisions derive from named splits of an immutable root (SplitNamed
// never advances its parent), and the counters are atomic.
type Injector struct {
	spec   Spec
	root   *rng.RNG
	scoped map[string]bool

	panics  atomic.Int64
	errs    atomic.Int64
	delays  atomic.Int64
	decided atomic.Int64
}

// New builds an Injector for spec. The spec must validate.
func New(spec Spec) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{spec: spec, root: rng.New(spec.Seed)}
	if len(spec.Stages) > 0 {
		in.scoped = make(map[string]bool, len(spec.Stages))
		for _, s := range spec.Stages {
			in.scoped[s] = true
		}
	}
	return in, nil
}

// Decide returns the injector's decision for one (stage, attempt) pair.
// Pure and deterministic: the same triple (seed, stage, attempt) always
// yields the same decision, independent of call order, wall clock, or
// concurrency.
func (in *Injector) Decide(stage string, attempt int) Decision {
	if in.scoped != nil && !in.scoped[stage] {
		return None
	}
	u := in.root.SplitNamed(fmt.Sprintf("%s/attempt-%d", stage, attempt)).Float64()
	switch {
	case u < in.spec.PanicProb:
		return Panic
	case u < in.spec.PanicProb+in.spec.ErrorProb:
		return Error
	case u < in.spec.PanicProb+in.spec.ErrorProb+in.spec.LatencyProb:
		return Latency
	default:
		return None
	}
}

// Middleware adapts the injector to the stage graph: the fault (if any)
// fires at the top of the attempt, before the stage body runs, so a
// retried stage always re-executes from untouched state.
func (in *Injector) Middleware() parallel.StageMiddleware {
	return func(stage string, attempt int, run func() error) error {
		in.decided.Add(1)
		switch in.Decide(stage, attempt) {
		case Panic:
			in.panics.Add(1)
			panic(fmt.Sprintf("fault: injected panic in %s attempt %d", stage, attempt))
		case Error:
			in.errs.Add(1)
			return fmt.Errorf("fault: stage %s attempt %d: %w", stage, attempt, ErrInjected)
		case Latency:
			in.delays.Add(1)
			if in.spec.Latency > 0 {
				time.Sleep(in.spec.Latency)
			}
		}
		return run()
	}
}

// Counts reports how many faults of each kind have fired so far.
func (in *Injector) Counts() (panics, errs, delays int64) {
	return in.panics.Load(), in.errs.Load(), in.delays.Load()
}

// Attempts reports how many stage attempts the injector has seen.
func (in *Injector) Attempts() int64 { return in.decided.Load() }

// ParseSpec parses the rcpt-serve -chaos flag syntax: a comma-separated
// key=value list, e.g.
//
//	seed=7,panic=0.1,error=0.2,latency=0.1,delay=20ms,stages=trace-2011|rake-2024
//
// Transport faults use the net* keys (applied to peer traffic when the
// replica is clustered):
//
//	seed=7,netdrop=0.1,netdup=0.05,netdelay=0.2,netlag=20ms,netpart=0.02
//
// Unknown keys are rejected. An empty string parses to a disabled spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: bad spec term %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			spec.Seed, err = strconv.ParseUint(v, 10, 64)
		case "panic":
			spec.PanicProb, err = strconv.ParseFloat(v, 64)
		case "error":
			spec.ErrorProb, err = strconv.ParseFloat(v, 64)
		case "latency":
			spec.LatencyProb, err = strconv.ParseFloat(v, 64)
		case "delay":
			spec.Latency, err = time.ParseDuration(v)
		case "netdrop":
			spec.NetDropProb, err = strconv.ParseFloat(v, 64)
		case "netdup":
			spec.NetDupProb, err = strconv.ParseFloat(v, 64)
		case "netdelay":
			spec.NetDelayProb, err = strconv.ParseFloat(v, 64)
		case "netlag":
			spec.NetDelay, err = time.ParseDuration(v)
		case "netpart":
			spec.NetPartitionProb, err = strconv.ParseFloat(v, 64)
		case "stages":
			spec.Stages = strings.Split(v, "|")
			sort.Strings(spec.Stages)
		default:
			return Spec{}, fmt.Errorf("fault: unknown spec key %q", k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad value for %q: %v", k, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
