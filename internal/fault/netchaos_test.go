package fault

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestNetDecideDeterminism: the decision stream is a pure function of
// seed×(src,dst)×attempt — two injectors built alike replay identical
// weather, and the stream is independent of interleaving across links.
func TestNetDecideDeterminism(t *testing.T) {
	spec := Spec{Seed: 7, NetDropProb: 0.2, NetDupProb: 0.2, NetDelayProb: 0.2}
	a, err := NewNet(spec, "http://a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNet(spec, "http://a")
	if err != nil {
		t.Fatal(err)
	}
	dsts := []string{"http://b", "http://c"}
	// a draws 50 per link, link by link; b interleaves the links. The
	// per-link streams must match regardless.
	got := map[string][]NetDecision{}
	for _, dst := range dsts {
		for i := 0; i < 50; i++ {
			got[dst] = append(got[dst], a.Decide(dst))
		}
	}
	want := map[string][]NetDecision{}
	for i := 0; i < 50; i++ {
		for _, dst := range dsts {
			want[dst] = append(want[dst], b.Decide(dst))
		}
	}
	for _, dst := range dsts {
		for i := range got[dst] {
			if got[dst][i] != want[dst][i] {
				t.Fatalf("link %s attempt %d: %v vs %v — stream is not pure per (seed, src, dst, attempt)",
					dst, i, got[dst][i], want[dst][i])
			}
		}
	}
	// Different src: a genuinely different stream (each replica in a ring
	// sees its own weather). Equality of all 100 draws would mean src is
	// not salting the stream.
	c, _ := NewNet(spec, "http://z")
	same := true
	for _, dst := range dsts {
		for i := range got[dst] {
			if c.Decide(dst) != got[dst][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("src does not salt the decision stream")
	}
}

// TestScriptedPartition: SetPartition severs cross-group links only,
// unknown hosts are unaffected, and Heal restores everything.
func TestScriptedPartition(t *testing.T) {
	n, err := NewNet(Spec{Seed: 1}, "http://a")
	if err != nil {
		t.Fatal(err)
	}
	if n.Blocked("http://b") {
		t.Fatal("blocked before any partition")
	}
	n.SetPartition([]string{"http://a"}, []string{"http://b", "http://c"})
	if !n.Blocked("http://b") || !n.Blocked("http://c") {
		t.Fatal("cross-group link not severed")
	}
	if n.Blocked("http://unlisted") {
		t.Fatal("host outside the script was severed")
	}
	n.SetPartition([]string{"http://a", "http://b"}, []string{"http://c"})
	if n.Blocked("http://b") {
		t.Fatal("same-group link severed")
	}
	if !n.Blocked("http://c") {
		t.Fatal("re-scripted partition not applied")
	}
	n.Heal()
	if n.Blocked("http://b") || n.Blocked("http://c") {
		t.Fatal("Heal did not lift the partition")
	}
}

// TestSeededPartitionLinkStable: a seeded cut has no attempt term — a
// partitioned link is partitioned for every request.
func TestSeededPartitionLinkStable(t *testing.T) {
	n, err := NewNet(Spec{Seed: 3, NetPartitionProb: 0.5}, "http://a")
	if err != nil {
		t.Fatal(err)
	}
	for _, dst := range []string{"http://b", "http://c", "http://d", "http://e"} {
		first := n.Blocked(dst)
		for i := 0; i < 20; i++ {
			if n.Blocked(dst) != first {
				t.Fatalf("link %s flapped — seeded partitions must be stable", dst)
			}
		}
	}
	all, _ := NewNet(Spec{Seed: 3, NetPartitionProb: 1}, "http://a")
	if !all.Blocked("http://anything") {
		t.Fatal("probability 1 did not sever the link")
	}
}

// TestRoundTripperFaults drives a real client through the chaos
// transport: duplicates reach the server twice, drops never arrive and
// surface ErrNetInjected, delays arrive late, and a scripted partition
// blocks with its own counter.
func TestRoundTripperFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	client := func(spec Spec) (*NetInjector, *http.Client) {
		t.Helper()
		n, err := NewNet(spec, "http://self")
		if err != nil {
			t.Fatal(err)
		}
		return n, &http.Client{Transport: n.RoundTripper(nil)}
	}

	// Duplicate: the server sees the request twice; the caller sees one
	// normal response.
	n, hc := client(Spec{Seed: 1, NetDupProb: 1})
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests for one duplicated send, want 2", got)
	}
	if _, dups, _, _ := n.NetCounts(); dups != 1 {
		t.Fatalf("dup counter = %d, want 1", dups)
	}

	// Drop: the request never arrives and the error is identifiable.
	hits.Store(0)
	n, hc = client(Spec{Seed: 1, NetDropProb: 1})
	if _, err := hc.Get(srv.URL); !errors.Is(err, ErrNetInjected) {
		t.Fatalf("dropped request error = %v, want ErrNetInjected", err)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d requests despite drop", got)
	}
	if drops, _, _, _ := n.NetCounts(); drops != 1 {
		t.Fatalf("drop counter = %d, want 1", drops)
	}

	// Delay: the request arrives, late, and is counted.
	n, hc = client(Spec{Seed: 1, NetDelayProb: 1, NetDelay: 10 * time.Millisecond})
	start := time.Now()
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e := time.Since(start); e < 10*time.Millisecond {
		t.Fatalf("delayed request returned in %v, want >= 10ms", e)
	}
	if _, _, delays, _ := n.NetCounts(); delays != 1 {
		t.Fatalf("delay counter = %d, want 1", delays)
	}

	// Scripted partition: blocked with its own counter, server untouched.
	hits.Store(0)
	n, hc = client(Spec{Seed: 1})
	n.SetPartition([]string{"http://self"}, []string{srv.URL})
	if _, err := hc.Get(srv.URL); !errors.Is(err, ErrNetInjected) {
		t.Fatalf("partitioned request error = %v, want ErrNetInjected", err)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d requests across a partition", got)
	}
	if _, _, _, blocked := n.NetCounts(); blocked != 1 {
		t.Fatalf("blocked counter = %d, want 1", blocked)
	}
}

// TestParseSpecNetKeys: the -chaos grammar covers transport faults.
func TestParseSpecNetKeys(t *testing.T) {
	spec, err := ParseSpec("seed=7,netdrop=0.1,netdup=0.05,netdelay=0.2,netlag=20ms,netpart=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || spec.NetDropProb != 0.1 || spec.NetDupProb != 0.05 ||
		spec.NetDelayProb != 0.2 || spec.NetDelay != 20*time.Millisecond || spec.NetPartitionProb != 0.02 {
		t.Fatalf("parsed spec = %+v", spec)
	}
	if !spec.NetEnabled() || spec.Enabled() {
		t.Fatalf("net-only spec: NetEnabled=%v Enabled=%v, want true/false", spec.NetEnabled(), spec.Enabled())
	}
	if _, err := ParseSpec("netdrop=0.6,netdup=0.6"); err == nil {
		t.Fatal("net probabilities summing past 1 accepted")
	}
	if _, err := ParseSpec("netlag=-5ms"); err == nil {
		t.Fatal("negative net delay accepted")
	}
}
