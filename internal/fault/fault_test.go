package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/rng"
)

func TestDecideIsDeterministic(t *testing.T) {
	spec := Spec{Seed: 7, PanicProb: 0.2, ErrorProb: 0.2, LatencyProb: 0.2}
	a, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"cohort-2011", "trace-2013", "sim-policy", "rake-2024"}
	// Same decisions regardless of query order or interleaving.
	for _, st := range stages {
		for attempt := 1; attempt <= 4; attempt++ {
			if got, want := a.Decide(st, attempt), b.Decide(st, attempt); got != want {
				t.Fatalf("%s/%d: %v != %v", st, attempt, got, want)
			}
		}
	}
	for attempt := 4; attempt >= 1; attempt-- {
		for i := len(stages) - 1; i >= 0; i-- {
			if got, want := a.Decide(stages[i], attempt), b.Decide(stages[i], attempt); got != want {
				t.Fatalf("reversed %s/%d: %v != %v", stages[i], attempt, got, want)
			}
		}
	}
}

func TestDecideConcurrentConsistency(t *testing.T) {
	in, err := New(Spec{Seed: 3, PanicProb: 0.3, ErrorProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// Record the serial answers, then hammer Decide from many goroutines:
	// every answer must match (SplitNamed is a pure read of the root).
	want := map[string]Decision{}
	for s := 0; s < 8; s++ {
		for a := 1; a <= 3; a++ {
			k := fmt.Sprintf("s%d/%d", s, a)
			want[k] = in.Decide(fmt.Sprintf("s%d", s), a)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < 8; s++ {
				for a := 1; a <= 3; a++ {
					k := fmt.Sprintf("s%d/%d", s, a)
					if got := in.Decide(fmt.Sprintf("s%d", s), a); got != want[k] {
						select {
						case errs <- k:
						default:
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if k, bad := <-errs; bad {
		t.Fatalf("concurrent Decide diverged at %s", k)
	}
}

func TestDecisionRatesTrackProbabilities(t *testing.T) {
	in, err := New(Spec{Seed: 11, PanicProb: 0.25, ErrorProb: 0.25, LatencyProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Decision]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[in.Decide(fmt.Sprintf("stage-%d", i), 1)]++
	}
	for _, d := range []Decision{None, Panic, Error, Latency} {
		frac := float64(counts[d]) / n
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("%v rate %.3f far from 0.25 (counts=%v)", d, frac, counts)
		}
	}
}

func TestStageScoping(t *testing.T) {
	in, err := New(Spec{Seed: 1, ErrorProb: 1, Stages: []string{"only-this"}})
	if err != nil {
		t.Fatal(err)
	}
	if d := in.Decide("other", 1); d != None {
		t.Fatalf("out-of-scope stage got %v", d)
	}
	if d := in.Decide("only-this", 1); d != Error {
		t.Fatalf("in-scope stage got %v", d)
	}
}

func TestMiddlewareInjectsBeforeRun(t *testing.T) {
	in, err := New(Spec{Seed: 1, ErrorProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	mw := in.Middleware()
	ran := false
	errInj := mw("s", 1, func() error { ran = true; return nil })
	if !errors.Is(errInj, ErrInjected) {
		t.Fatalf("err=%v", errInj)
	}
	if ran {
		t.Fatal("stage body ran despite injected error")
	}
	if _, e, _ := in.Counts(); e != 1 {
		t.Fatalf("error count=%d", e)
	}
}

func TestMiddlewarePanicNamesStageAndAttempt(t *testing.T) {
	in, err := New(Spec{Seed: 1, PanicProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	mw := in.Middleware()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		s := fmt.Sprint(p)
		if s != "fault: injected panic in victim attempt 2" {
			t.Fatalf("panic=%q", s)
		}
	}()
	_ = mw("victim", 2, func() error { return nil })
}

func TestMiddlewareLatencyDelaysThenRuns(t *testing.T) {
	in, err := New(Spec{Seed: 1, LatencyProb: 1, Latency: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mw := in.Middleware()
	ran := false
	start := time.Now()
	if err := mw("s", 1, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("stage body did not run after latency fault")
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("no delay observed: %v", d)
	}
	if _, _, delays := in.Counts(); delays != 1 {
		t.Fatalf("delay count=%d", delays)
	}
}

// TestInjectedGraphIsRecoverable wires an injector into a real stage
// graph with retries: with ~1/3 of first attempts failing and 4
// attempts available, the graph must converge and the daemon-facing
// invariant — injected panics become typed errors, never process
// crashes — must hold.
func TestInjectedGraphIsRecoverable(t *testing.T) {
	in, err := New(Spec{Seed: 5, PanicProb: 0.15, ErrorProb: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[string]int{}
	g := parallel.NewGraph()
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("s%d", i)
		i := i
		g.AddRetryable(name, func() error {
			mu.Lock()
			got[name] = i * i
			mu.Unlock()
			return nil
		})
	}
	g.SetRetry(parallel.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond}, rng.New(1))
	g.SetMiddleware(in.Middleware())
	if err := g.Run(4); err != nil {
		t.Fatalf("graph did not converge under injection: %v", err)
	}
	if len(got) != 12 {
		t.Fatalf("only %d stages completed", len(got))
	}
	p, e, _ := in.Counts()
	if p+e == 0 {
		t.Fatal("injector fired nothing; test is vacuous")
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=7,panic=0.1,error=0.2,latency=0.05,delay=20ms,stages=trace-2011|rake-2024")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 7, PanicProb: 0.1, ErrorProb: 0.2, LatencyProb: 0.05,
		Latency: 20 * time.Millisecond, Stages: []string{"rake-2024", "trace-2011"},
	}
	if fmt.Sprint(spec) != fmt.Sprint(want) {
		t.Fatalf("spec=%+v, want %+v", spec, want)
	}
	if empty, err := ParseSpec(""); err != nil || empty.Enabled() {
		t.Fatalf("empty spec: %+v err=%v", empty, err)
	}
	for _, bad := range []string{"panic=2", "wat=1", "panic", "delay=xyz", "panic=0.6,error=0.6"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
