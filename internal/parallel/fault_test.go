package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestStageErrorCarriesAttribution(t *testing.T) {
	boom := errors.New("boom")
	g := NewGraph()
	g.Add("bad", func() error { return boom })
	err := g.Run(2)
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err=%T %v, want *StageError", err, err)
	}
	if se.Stage != "bad" || se.Attempt != 1 || se.Panicked {
		t.Fatalf("StageError=%+v", se)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause not unwrapped: %v", err)
	}
}

func TestStageErrorFromPanicHasStack(t *testing.T) {
	g := NewGraph()
	g.Add("p", func() error { panic("kaboom") })
	err := g.Run(2)
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err=%T %v, want *StageError", err, err)
	}
	if !se.Panicked || se.Stage != "p" {
		t.Fatalf("StageError=%+v", se)
	}
	if se.Stack == "" || !strings.Contains(se.Stack, "goroutine") {
		t.Fatalf("missing stack: %q", se.Stack)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err=%v", err)
	}
}

func TestRetryableStageRetriesUntilSuccess(t *testing.T) {
	var attempts atomic.Int64
	g := NewGraph()
	g.AddRetryable("flaky", func() error {
		if attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	g.SetRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}, rng.New(1))
	if err := g.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts=%d, want 3", got)
	}
}

func TestRetryExhaustionReportsLastAttempt(t *testing.T) {
	boom := errors.New("still broken")
	var attempts atomic.Int64
	g := NewGraph()
	g.AddRetryable("flaky", func() error { attempts.Add(1); return boom })
	g.SetRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}, rng.New(1))
	err := g.Run(1)
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err=%T %v", err, err)
	}
	if se.Attempt != 3 || attempts.Load() != 3 {
		t.Fatalf("attempt=%d attempts=%d, want 3/3", se.Attempt, attempts.Load())
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestNonRetryableStageFailsOnce(t *testing.T) {
	var attempts atomic.Int64
	g := NewGraph()
	g.Add("brittle", func() error { attempts.Add(1); return errors.New("no") })
	g.SetRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond}, rng.New(1))
	if err := g.Run(1); err == nil {
		t.Fatal("expected error")
	}
	if attempts.Load() != 1 {
		t.Fatalf("non-retryable stage attempted %d times", attempts.Load())
	}
}

func TestRetryBackoffJitterIsDeterministic(t *testing.T) {
	// The backoff sequence for a stage must be a pure function of the
	// retry seed and stage name — independent of workers or wall clock.
	delays := func() []time.Duration {
		p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
		jr := rng.New(42).SplitNamed("retry").SplitNamed("retry/stage-x")
		var out []time.Duration
		for attempt := 2; attempt <= 5; attempt++ {
			out = append(out, p.backoffFor(attempt, jr))
		}
		return out
	}
	a, b := delays(), delays()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v != %v", i+2, a[i], b[i])
		}
		lo := []time.Duration{5, 10, 20, 20}[i] * time.Millisecond
		hi := 2 * lo
		if a[i] < lo || a[i] > hi {
			t.Fatalf("attempt %d delay %v outside [%v,%v]", i+2, a[i], lo, hi)
		}
	}
}

func TestGraphEventsEmitted(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	g := NewGraph()
	var tries atomic.Int64
	g.AddRetryable("flaky", func() error {
		if tries.Add(1) == 1 {
			panic("first try explodes")
		}
		return nil
	})
	g.SetRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond}, rng.New(1))
	g.SetEventHook(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err := g.Run(2); err != nil {
		t.Fatal(err)
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
		if ev.Stage != "flaky" {
			t.Fatalf("event for wrong stage: %+v", ev)
		}
	}
	want := []EventKind{EventPanic, EventRetry}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("kinds=%v, want %v", kinds, want)
	}
}

func TestGraphCancelEventEmittedOnce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cancels atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	g := NewGraph()
	g.Add("slow", func() error { close(started); <-release; return nil })
	g.Add("s2", func() error { return nil }, "slow")
	g.Add("s3", func() error { return nil }, "slow")
	g.SetEventHook(func(ev Event) {
		if ev.Kind == EventCancel {
			cancels.Add(1)
		}
	})
	done := make(chan error, 1)
	go func() { done <- g.RunContext(ctx, 3) }()
	<-started
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
	if n := cancels.Load(); n != 1 {
		t.Fatalf("cancel events=%d, want 1", n)
	}
}

func TestGraphMiddlewareWrapsEveryAttempt(t *testing.T) {
	var mu sync.Mutex
	var calls []string
	var tries atomic.Int64
	g := NewGraph()
	g.Add("ok", func() error { return nil })
	g.AddRetryable("flaky", func() error {
		if tries.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	}, "ok")
	g.SetRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond}, rng.New(1))
	g.SetMiddleware(func(stage string, attempt int, run func() error) error {
		mu.Lock()
		calls = append(calls, fmt.Sprintf("%s/%d", stage, attempt))
		mu.Unlock()
		return run()
	})
	if err := g.Run(1); err != nil {
		t.Fatal(err)
	}
	want := []string{"ok/1", "flaky/1", "flaky/2"}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Fatalf("calls=%v, want %v", calls, want)
	}
}

func TestGraphMiddlewarePanicIsolated(t *testing.T) {
	g := NewGraph()
	g.Add("victim", func() error { return nil })
	g.SetMiddleware(func(stage string, attempt int, run func() error) error {
		panic("middleware bug")
	})
	err := g.Run(2)
	var se *StageError
	if !errors.As(err, &se) || !se.Panicked || se.Stage != "victim" {
		t.Fatalf("err=%v", err)
	}
}

func TestGraphObserverPanicDoesNotFailRun(t *testing.T) {
	g := NewGraph()
	g.Add("a", func() error { return nil })
	g.Add("b", func() error { return nil }, "a")
	g.SetObserver(func(stage string, seconds float64) { panic("bad telemetry") })
	g.SetEventHook(func(Event) { panic("bad hook") })
	if err := g.Run(2); err != nil {
		t.Fatalf("telemetry panic failed the run: %v", err)
	}
}

func TestRetryDeterministicAcrossWorkerCounts(t *testing.T) {
	// A graph with retryable flaky stages must produce identical outputs
	// for any worker count: each stage's result depends only on its own
	// (deterministic) attempt sequence, never on scheduling.
	outputs := func(workers int) string {
		var mu sync.Mutex
		results := map[string]int{}
		g := NewGraph()
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("s%d", i)
			i := i
			var tries int32
			g.AddRetryable(name, func() error {
				t := atomic.AddInt32(&tries, 1)
				if int(t) <= i%3 { // s0,s3 succeed first try; s2,s5 need 3 tries
					return errors.New("transient")
				}
				mu.Lock()
				results[name] = i * int(t)
				mu.Unlock()
				return nil
			})
		}
		g.SetRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond}, rng.New(7).SplitNamed("retry"))
		if err := g.Run(workers); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(results)
	}
	want := outputs(1)
	for _, w := range []int{2, 4, 8} {
		if got := outputs(w); got != want {
			t.Fatalf("workers=%d: %s != %s", w, got, want)
		}
	}
}

// settleGoroutines polls until the goroutine count returns to within
// slack of base, failing the test if it never settles. This is the
// goleak-style assertion: Run must not strand worker goroutines.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not settle: %d > %d\n%s", n, base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGraphNoGoroutineLeakOnEarlyError(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		g := NewGraph()
		g.Add("bad", func() error { return errors.New("early") })
		for i := 0; i < 8; i++ {
			g.Add(fmt.Sprintf("s%d", i), func() error {
				time.Sleep(time.Millisecond)
				return nil
			})
		}
		if err := g.Run(4); err == nil {
			t.Fatal("expected error")
		}
	}
	settleGoroutines(t, base)
}

func TestGraphNoGoroutineLeakOnCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 10; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		g := NewGraph()
		var once sync.Once
		for i := 0; i < 6; i++ {
			g.Add(fmt.Sprintf("s%d", i), func() error {
				once.Do(func() { close(started) })
				time.Sleep(time.Millisecond)
				return nil
			})
		}
		done := make(chan error, 1)
		go func() { done <- g.RunContext(ctx, 3) }()
		<-started
		cancel()
		<-done
	}
	settleGoroutines(t, base)
}

func TestGraphAwaitsInFlightStagesBeforeReturning(t *testing.T) {
	// Run must never return while a stage goroutine is still executing
	// user code — the in-flight counter has to be zero at return.
	var inFlight atomic.Int64
	g := NewGraph()
	g.Add("bad", func() error { return errors.New("fail fast") })
	for i := 0; i < 6; i++ {
		g.Add(fmt.Sprintf("s%d", i), func() error {
			inFlight.Add(1)
			defer inFlight.Add(-1)
			time.Sleep(3 * time.Millisecond)
			return nil
		})
	}
	if err := g.Run(4); err == nil {
		t.Fatal("expected error")
	}
	if n := inFlight.Load(); n != 0 {
		t.Fatalf("%d stages still in flight after Run returned", n)
	}
}
