package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrderPreserved(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	out, err := Map(8, xs, func(_ int, x int) (int, error) { return x * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d]=%d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, nil, func(_ int, x int) (int, error) { return x, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	xs := make([]int, 100)
	_, err := Map(4, xs, func(i int, _ int) (int, error) {
		if i == 42 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	xs := make([]int, 10)
	_, err := Map(2, xs, func(i int, _ int) (int, error) {
		if i == 3 {
			panic("kaboom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
}

func TestMapSerialEqualsParallel(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i) * 1.5
	}
	fn := func(_ int, x float64) (float64, error) { return x*x + 1, nil }
	serial, err1 := Map(1, xs, fn)
	par, err2 := Map(8, xs, fn)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("index %d: serial %g != parallel %g", i, serial[i], par[i])
		}
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for parts := 1; parts <= 10; parts++ {
			cs := Chunks(n, parts)
			covered := 0
			prevHi := 0
			for i, c := range cs {
				if c.Index != i {
					t.Fatalf("chunk index %d != %d", c.Index, i)
				}
				if c.Lo != prevHi {
					t.Fatalf("gap before chunk %d", i)
				}
				if c.Hi <= c.Lo {
					t.Fatalf("empty chunk %d", i)
				}
				covered += c.Hi - c.Lo
				prevHi = c.Hi
			}
			if covered != n {
				t.Fatalf("n=%d parts=%d covered %d", n, parts, covered)
			}
		}
	}
	if Chunks(0, 4) != nil {
		t.Fatal("zero items should give no chunks")
	}
	if got := Chunks(5, 0); len(got) != 1 {
		t.Fatalf("parts=0 should degrade to 1 chunk, got %d", len(got))
	}
}

func TestMapChunksDeterministic(t *testing.T) {
	sum := func(c Chunk) (int, error) {
		s := 0
		for i := c.Lo; i < c.Hi; i++ {
			s += i
		}
		return s, nil
	}
	p1, err := MapChunks(4, 1000, sum)
	if err != nil {
		t.Fatal(err)
	}
	total := Fold(p1, 0, func(a, r int) int { return a + r })
	if total != 999*1000/2 {
		t.Fatalf("total=%d", total)
	}
}

func TestFoldOrdered(t *testing.T) {
	// Non-commutative merge: string concat must be in chunk order.
	got := Fold([]string{"a", "b", "c"}, "", func(a string, r string) string { return a + r })
	if got != "abc" {
		t.Fatalf("fold=%q", got)
	}
}

func TestPoolRunsAll(t *testing.T) {
	p := NewPool(4, 16)
	var n atomic.Int64
	for i := 0; i < 200; i++ {
		if err := p.Submit(func() error { n.Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 200 {
		t.Fatalf("ran %d of 200", n.Load())
	}
}

func TestPoolCollectsErrors(t *testing.T) {
	p := NewPool(2, 4)
	for i := 0; i < 10; i++ {
		i := i
		_ = p.Submit(func() error {
			if i%3 == 0 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	err := p.Close()
	if err == nil {
		t.Fatal("errors dropped")
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1, 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(func() error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err=%v", err)
	}
	// Double close is safe.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolPanicBecomesError(t *testing.T) {
	p := NewPool(1, 1)
	_ = p.Submit(func() error { panic("pool kaboom") })
	if err := p.Close(); err == nil {
		t.Fatal("panic swallowed by pool")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 1000; i++ {
				c.Add(w, 1)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if c.Value() != 8000 {
		t.Fatalf("counter=%d", c.Value())
	}
	c.Add(-5, 2) // negative shard index must be safe
	if c.Value() != 8002 {
		t.Fatalf("counter=%d", c.Value())
	}
}

// Property: chunking covers [0,n) exactly for arbitrary inputs.
func TestQuickChunks(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 5000)
		parts := int(pRaw % 64)
		cs := Chunks(n, parts)
		covered := 0
		prev := 0
		for _, c := range cs {
			if c.Lo != prev || c.Hi <= c.Lo {
				return false
			}
			covered += c.Hi - c.Lo
			prev = c.Hi
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMapParallel(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Map(0, xs, func(_ int, x float64) (float64, error) {
			s := 0.0
			for k := 0; k < 50; k++ {
				s += x * float64(k)
			}
			return s, nil
		})
	}
}
