package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Stage is one node of a Graph: a named unit of work plus the names of
// the stages whose outputs it consumes. Run must be internally
// deterministic (derive any randomness from streams split before the
// graph starts); the executor guarantees only ordering, not scheduling.
// Retryable stages must additionally be idempotent: re-running the
// closure from the top must reproduce the same output, which the
// pipeline achieves by deriving its rng streams by name *inside* the
// stage body.
type Stage struct {
	Name      string
	Deps      []string
	Run       func() error
	Retryable bool
}

// StageError is the typed failure of one graph stage: which stage
// failed, on which attempt, whether the failure was a recovered panic
// (with the goroutine stack captured at recovery), and the underlying
// cause. Graph.Run returns a *StageError for stage failures, so callers
// can attribute faults with errors.As and decide routing (retry the
// run, open a circuit, surface the stage name to a client) without
// string matching.
type StageError struct {
	Stage    string
	Attempt  int    // 1-based attempt that produced the final failure
	Panicked bool   // the failure was a recovered panic
	Stack    string // goroutine stack captured at recovery (panics only)
	Err      error  // underlying cause
}

func (e *StageError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("parallel: stage %q panicked: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("parallel: stage %q: %v", e.Stage, e.Err)
}

// Unwrap exposes the cause so errors.Is/As see through the stage frame.
func (e *StageError) Unwrap() error { return e.Err }

// EventKind classifies a resilience event emitted by the graph runtime.
type EventKind string

const (
	// EventPanic: a stage attempt panicked and was recovered.
	EventPanic EventKind = "panic"
	// EventRetry: a failed attempt will be retried after backoff.
	EventRetry EventKind = "retry"
	// EventCancel: the run's context was cancelled; pending stages are
	// skipped. Emitted once per run.
	EventCancel EventKind = "cancel"
)

// Event is one resilience event: a recovered panic, a scheduled retry,
// or a run cancellation. Events are telemetry only — hooks must not
// feed back into stage behaviour.
type Event struct {
	Stage   string
	Kind    EventKind
	Attempt int
	Err     error
}

// RetryPolicy bounds how stages marked retryable are re-attempted.
// Backoff doubles from BaseDelay per attempt, is capped at MaxDelay,
// and carries deterministic "equal jitter" drawn from an rng stream
// split by stage name — so the delay sequence is a pure function of
// (retry seed, stage name, attempt), identical for any worker count.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per retryable stage; <= 1 disables retry
	BaseDelay   time.Duration // backoff before attempt 2; doubles each attempt
	MaxDelay    time.Duration // cap on the backoff (0 = uncapped)
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// backoff returns the delay before the given attempt (2-based) with the
// jitter stream for this stage. Deterministic: same stream state and
// attempt always produce the same delay.
func (p RetryPolicy) backoff(attempt int, jitter *rng.RNG) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 2; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Equal jitter: half fixed, half uniform — keeps retries spread
	// without ever collapsing the delay to zero.
	return d/2 + time.Duration(jitter.Float64()*float64(d/2))
}

// StageMiddleware wraps one stage attempt. The fault-injection harness
// (internal/fault) uses it to deterministically panic, fail, or delay a
// stage at the attempt boundary — before the stage body runs — so a
// retried stage re-executes from an untouched state. Middleware runs
// inside the graph's panic recovery: a middleware panic is isolated
// exactly like a stage panic.
type StageMiddleware func(stage string, attempt int, run func() error) error

// Graph is an explicit stage DAG executed by a bounded worker pool.
// Stages with no unmet dependencies run concurrently; the first error
// (or panic, recovered into a typed *StageError) cancels every stage
// that has not yet started, while in-flight stages finish — Run never
// returns with a stage still executing. Because stages exchange data
// only through their declared dependency edges, the output is identical
// for any worker count — the property the pipeline's rng-split
// determinism convention exists to exploit.
//
// Build with Add/AddRetryable, then call Run once. A Graph is not
// reusable.
type Graph struct {
	stages   []Stage
	index    map[string]int
	addErr   error
	observer func(stage string, seconds float64)
	events   func(Event)
	mw       StageMiddleware
	retry    RetryPolicy
	retryRNG *rng.RNG
}

// NewGraph returns an empty stage graph.
func NewGraph() *Graph {
	return &Graph{index: map[string]int{}}
}

// Add registers a stage. Dependencies may be registered before or after
// the stages that declare them; they are resolved at Run. Registration
// errors (duplicate name, nil func) are deferred to Run so call sites
// can stay declarative.
func (g *Graph) Add(name string, run func() error, deps ...string) {
	g.add(Stage{Name: name, Deps: deps, Run: run})
}

// AddRetryable registers a stage that the retry policy (SetRetry) may
// re-attempt after a failure. The stage must be idempotent: re-running
// it from the top must reproduce the same output.
func (g *Graph) AddRetryable(name string, run func() error, deps ...string) {
	g.add(Stage{Name: name, Deps: deps, Run: run, Retryable: true})
}

func (g *Graph) add(st Stage) {
	if g.addErr != nil {
		return
	}
	if st.Name == "" {
		g.addErr = fmt.Errorf("parallel: graph stage with empty name")
		return
	}
	if st.Run == nil {
		g.addErr = fmt.Errorf("parallel: graph stage %q has nil func", st.Name)
		return
	}
	if _, dup := g.index[st.Name]; dup {
		g.addErr = fmt.Errorf("parallel: duplicate graph stage %q", st.Name)
		return
	}
	g.index[st.Name] = len(g.stages)
	g.stages = append(g.stages, st)
}

// Len returns the number of registered stages.
func (g *Graph) Len() int { return len(g.stages) }

// SetObserver installs a per-stage timing hook: after each stage
// finishes (success or failure), obs is called with the stage name and
// its wall-clock duration in seconds. Observation is telemetry only —
// it must not feed back into stage behaviour, or runs stop being pure
// functions of their inputs. The hook may be invoked concurrently from
// multiple workers and must be safe for that. A panicking hook is
// recovered and isolated like a stage panic.
func (g *Graph) SetObserver(obs func(stage string, seconds float64)) { g.observer = obs }

// SetEventHook installs a resilience-event hook (recovered panics,
// retries, cancellation). Same contract as SetObserver: telemetry only,
// concurrency-safe, panics recovered.
func (g *Graph) SetEventHook(fn func(Event)) { g.events = fn }

// SetMiddleware installs a wrapper around every stage attempt; see
// StageMiddleware.
func (g *Graph) SetMiddleware(mw StageMiddleware) { g.mw = mw }

// SetRetry installs the retry policy for stages registered with
// AddRetryable, with jitter drawn from stream (split by stage name, so
// delays are deterministic for any worker count). A nil stream disables
// jitter.
func (g *Graph) SetRetry(p RetryPolicy, stream *rng.RNG) {
	g.retry = p
	g.retryRNG = stream
}

// Run executes the graph with at most workers concurrent stages
// (workers <= 0 means GOMAXPROCS). It returns the first stage error as
// a *StageError, wrapped with the stage name.
func (g *Graph) Run(workers int) error {
	return g.RunContext(context.Background(), workers)
}

// RunContext is Run with external cancellation: once ctx is done, no
// new stage starts (and no retry backoff keeps sleeping) and ctx.Err()
// is returned, unless a stage already failed, in which case that error
// wins. In-flight stages are always awaited before RunContext returns:
// cancellation never strands a running stage goroutine.
func (g *Graph) RunContext(ctx context.Context, workers int) error {
	if g.addErr != nil {
		return g.addErr
	}
	n := len(g.stages)
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}

	// Resolve edges and verify acyclicity (Kahn) before starting work.
	remaining := make([]int, n)    // unmet dependency count per stage
	dependents := make([][]int, n) // reverse edges
	for i, st := range g.stages {
		remaining[i] = len(st.Deps)
		for _, d := range st.Deps {
			j, ok := g.index[d]
			if !ok {
				return fmt.Errorf("parallel: stage %q depends on unknown stage %q", st.Name, d)
			}
			if j == i {
				return fmt.Errorf("parallel: stage %q depends on itself", st.Name)
			}
			dependents[j] = append(dependents[j], i)
		}
	}
	if err := checkAcyclic(g.stages, g.index); err != nil {
		return err
	}

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     []int
		done      int
		firstErr  error
		cancelled bool // cancel event emitted (once per run)
		// workerPanic holds a panic that escaped the scheduler loop
		// itself (not a stage — those are recovered in execStage). It is
		// deliberately lock-free: the recovery path cannot know whether
		// the panicking worker held mu, so it must not touch it.
		workerPanic atomic.Value
	)
	for i := range g.stages {
		if remaining[i] == 0 {
			ready = append(ready, i)
		}
	}
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	emitCancel := func(err error) {
		if !cancelled {
			cancelled = true
			g.emit(Event{Kind: EventCancel, Err: err})
		}
	}
	// Wake blocked workers when the context dies.
	stopWatch := context.AfterFunc(ctx, func() {
		mu.Lock()
		fail(ctx.Err())
		emitCancel(ctx.Err())
		mu.Unlock()
		cond.Broadcast()
	})
	defer stopWatch()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					// Scheduler-internal panic (should be impossible; stage
					// and hook panics are recovered in execStage). Record it
					// without touching mu — its state is unknown here — and
					// wake everyone so the run winds down instead of hanging.
					workerPanic.CompareAndSwap(nil, fmt.Errorf("parallel: graph worker panicked: %v\n%s", p, debug.Stack()))
					cond.Broadcast()
				}
			}()
			for {
				mu.Lock()
				for firstErr == nil && workerPanic.Load() == nil && done < n && len(ready) == 0 {
					cond.Wait()
				}
				// Check the context synchronously so no stage is
				// dispatched after cancellation, regardless of when the
				// AfterFunc wakeup lands.
				if firstErr == nil && ctx.Err() != nil {
					fail(ctx.Err())
					emitCancel(ctx.Err())
				}
				if p := workerPanic.Load(); p != nil {
					fail(p.(error))
				}
				if firstErr != nil || done == n {
					cond.Broadcast()
					mu.Unlock()
					return
				}
				i := ready[0]
				ready = ready[1:]
				st := g.stages[i]
				mu.Unlock()

				err := g.execStage(ctx, st)

				mu.Lock()
				done++
				if err != nil {
					fail(err)
				} else {
					for _, dep := range dependents[i] {
						remaining[dep]--
						if remaining[dep] == 0 {
							ready = append(ready, dep)
						}
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		if p := workerPanic.Load(); p != nil {
			firstErr = p.(error)
		}
	}
	return firstErr
}

// execStage runs one stage to completion: attempts (with middleware and
// full panic recovery), deterministic backoff between retries, and
// observer/event emission. It never panics — hook panics are recovered
// and attributed to the stage — so the caller's lock discipline stays
// intact no matter what user code does.
func (g *Graph) execStage(ctx context.Context, st Stage) error {
	maxAttempts := 1
	if st.Retryable && g.retry.enabled() {
		maxAttempts = g.retry.MaxAttempts
	}
	// One jitter stream per stage execution, derived by name: the delay
	// sequence cannot depend on which worker runs the stage or on what
	// other stages are doing. SplitNamed reads but never advances the
	// parent, so concurrent derivations are safe.
	var jitter *rng.RNG
	if maxAttempts > 1 && g.retryRNG != nil {
		jitter = g.retryRNG.SplitNamed("retry/" + st.Name)
	}
	for attempt := 1; ; attempt++ {
		err := g.runAttempt(st, attempt)
		if err == nil {
			return nil
		}
		if attempt >= maxAttempts || ctx.Err() != nil {
			return err
		}
		g.emit(Event{Stage: st.Name, Kind: EventRetry, Attempt: attempt, Err: err})
		if d := g.retry.backoffFor(attempt+1, jitter); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return err
			}
		}
	}
}

// backoffFor is backoff with a nil-jitter fallback.
func (p RetryPolicy) backoffFor(attempt int, jitter *rng.RNG) time.Duration {
	if jitter == nil {
		d := p.BaseDelay
		for i := 2; i < attempt; i++ {
			d *= 2
			if p.MaxDelay > 0 && d >= p.MaxDelay {
				break
			}
		}
		if p.MaxDelay > 0 && d > p.MaxDelay {
			d = p.MaxDelay
		}
		return d
	}
	return p.backoff(attempt, jitter)
}

// runAttempt invokes one attempt of one stage, converting panics
// (stage, middleware, or hook) into typed *StageErrors so a bad stage
// cannot take down the process, and timing the attempt for the
// observer.
func (g *Graph) runAttempt(st Stage, attempt int) (err error) {
	var start time.Time
	if g.observer != nil {
		start = time.Now()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &StageError{
				Stage:    st.Name,
				Attempt:  attempt,
				Panicked: true,
				Stack:    string(debug.Stack()),
				Err:      panicErr(p),
			}
			g.emit(Event{Stage: st.Name, Kind: EventPanic, Attempt: attempt, Err: err})
		}
		if g.observer != nil {
			// The observer itself runs inside this recovery frame via
			// observe; a panicking observer is isolated below.
			g.observe(st.Name, time.Since(start).Seconds())
		}
	}()
	if g.mw != nil {
		err = g.mw(st.Name, attempt, st.Run)
	} else {
		err = st.Run()
	}
	if err != nil {
		return &StageError{Stage: st.Name, Attempt: attempt, Err: err}
	}
	return nil
}

// observe calls the timing hook with panic isolation: telemetry must
// never be able to fail a run, let alone kill the process.
func (g *Graph) observe(stage string, seconds float64) {
	defer func() { _ = recover() }()
	g.observer(stage, seconds)
}

// emit calls the event hook (if any) with panic isolation.
func (g *Graph) emit(ev Event) {
	if g.events == nil {
		return
	}
	defer func() { _ = recover() }()
	g.events(ev)
}

// panicErr normalizes a recovered panic value into an error.
func panicErr(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return errors.New(fmt.Sprint(p))
}

// checkAcyclic runs Kahn's algorithm over the stage set and names one
// stage on any cycle found.
func checkAcyclic(stages []Stage, index map[string]int) error {
	n := len(stages)
	indeg := make([]int, n)
	next := make([][]int, n)
	for i, st := range stages {
		indeg[i] = len(st.Deps)
		for _, d := range st.Deps {
			next[index[d]] = append(next[index[d]], i)
		}
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, j := range next[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != n {
		for i, d := range indeg {
			if d > 0 {
				return fmt.Errorf("parallel: stage graph has a cycle through %q", stages[i].Name)
			}
		}
	}
	return nil
}
