package parallel

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Stage is one node of a Graph: a named unit of work plus the names of
// the stages whose outputs it consumes. Run must be internally
// deterministic (derive any randomness from streams split before the
// graph starts); the executor guarantees only ordering, not scheduling.
type Stage struct {
	Name string
	Deps []string
	Run  func() error
}

// Graph is an explicit stage DAG executed by a bounded worker pool.
// Stages with no unmet dependencies run concurrently; the first error
// (or panic, converted to an error) cancels every stage that has not
// yet started, while in-flight stages finish. Because stages exchange
// data only through their declared dependency edges, the output is
// identical for any worker count — the property the pipeline's
// rng-split determinism convention exists to exploit.
//
// Build with Add, then call Run once. A Graph is not reusable.
type Graph struct {
	stages   []Stage
	index    map[string]int
	addErr   error
	observer func(stage string, seconds float64)
}

// NewGraph returns an empty stage graph.
func NewGraph() *Graph {
	return &Graph{index: map[string]int{}}
}

// Add registers a stage. Dependencies may be registered before or after
// the stages that declare them; they are resolved at Run. Registration
// errors (duplicate name, nil func) are deferred to Run so call sites
// can stay declarative.
func (g *Graph) Add(name string, run func() error, deps ...string) {
	if g.addErr != nil {
		return
	}
	if name == "" {
		g.addErr = fmt.Errorf("parallel: graph stage with empty name")
		return
	}
	if run == nil {
		g.addErr = fmt.Errorf("parallel: graph stage %q has nil func", name)
		return
	}
	if _, dup := g.index[name]; dup {
		g.addErr = fmt.Errorf("parallel: duplicate graph stage %q", name)
		return
	}
	g.index[name] = len(g.stages)
	g.stages = append(g.stages, Stage{Name: name, Deps: deps, Run: run})
}

// Len returns the number of registered stages.
func (g *Graph) Len() int { return len(g.stages) }

// SetObserver installs a per-stage timing hook: after each stage
// finishes (success or failure), obs is called with the stage name and
// its wall-clock duration in seconds. Observation is telemetry only —
// it must not feed back into stage behaviour, or runs stop being pure
// functions of their inputs. The hook may be invoked concurrently from
// multiple workers and must be safe for that.
func (g *Graph) SetObserver(obs func(stage string, seconds float64)) { g.observer = obs }

// Run executes the graph with at most workers concurrent stages
// (workers <= 0 means GOMAXPROCS). It returns the first stage error,
// wrapped with the stage name.
func (g *Graph) Run(workers int) error {
	return g.RunContext(context.Background(), workers)
}

// RunContext is Run with external cancellation: once ctx is done, no
// new stage starts and ctx.Err() is returned (unless a stage already
// failed, in which case that error wins).
func (g *Graph) RunContext(ctx context.Context, workers int) error {
	if g.addErr != nil {
		return g.addErr
	}
	n := len(g.stages)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}

	// Resolve edges and verify acyclicity (Kahn) before starting work.
	remaining := make([]int, n)    // unmet dependency count per stage
	dependents := make([][]int, n) // reverse edges
	for i, st := range g.stages {
		remaining[i] = len(st.Deps)
		for _, d := range st.Deps {
			j, ok := g.index[d]
			if !ok {
				return fmt.Errorf("parallel: stage %q depends on unknown stage %q", st.Name, d)
			}
			if j == i {
				return fmt.Errorf("parallel: stage %q depends on itself", st.Name)
			}
			dependents[j] = append(dependents[j], i)
		}
	}
	if err := checkAcyclic(g.stages, g.index); err != nil {
		return err
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ready    []int
		done     int
		firstErr error
	)
	for i := range g.stages {
		if remaining[i] == 0 {
			ready = append(ready, i)
		}
	}
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	// Wake blocked workers when the context dies.
	stopWatch := context.AfterFunc(ctx, func() {
		mu.Lock()
		fail(ctx.Err())
		mu.Unlock()
		cond.Broadcast()
	})
	defer stopWatch()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			for {
				for firstErr == nil && done < n && len(ready) == 0 {
					cond.Wait()
				}
				// Check the context synchronously so no stage is
				// dispatched after cancellation, regardless of when the
				// AfterFunc wakeup lands.
				if firstErr == nil && ctx.Err() != nil {
					fail(ctx.Err())
				}
				if firstErr != nil || done == n {
					cond.Broadcast()
					return
				}
				i := ready[0]
				ready = ready[1:]
				st := g.stages[i]
				mu.Unlock()
				var start time.Time
				if g.observer != nil {
					start = time.Now()
				}
				err := runStage(st)
				if g.observer != nil {
					g.observer(st.Name, time.Since(start).Seconds())
				}
				mu.Lock()
				done++
				if err != nil {
					fail(err)
				} else {
					for _, dep := range dependents[i] {
						remaining[dep]--
						if remaining[dep] == 0 {
							ready = append(ready, dep)
						}
					}
				}
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// runStage invokes one stage, converting panics into errors so a bad
// stage cannot take down the whole process.
func runStage(st Stage) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("parallel: stage %q panicked: %v", st.Name, p)
		}
	}()
	if err := st.Run(); err != nil {
		return fmt.Errorf("parallel: stage %q: %w", st.Name, err)
	}
	return nil
}

// checkAcyclic runs Kahn's algorithm over the stage set and names one
// stage on any cycle found.
func checkAcyclic(stages []Stage, index map[string]int) error {
	n := len(stages)
	indeg := make([]int, n)
	next := make([][]int, n)
	for i, st := range stages {
		indeg[i] = len(st.Deps)
		for _, d := range st.Deps {
			next[index[d]] = append(next[index[d]], i)
		}
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, j := range next[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != n {
		for i, d := range indeg {
			if d > 0 {
				return fmt.Errorf("parallel: stage graph has a cycle through %q", stages[i].Name)
			}
		}
	}
	return nil
}
