package parallel

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGraphRunsAllStagesInDependencyOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	mark := func(name string) func() error {
		return func() error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	g := NewGraph()
	g.Add("c", mark("c"), "a", "b")
	g.Add("a", mark("a"))
	g.Add("b", mark("b"), "a")
	g.Add("d", mark("d"), "c")
	if err := g.Run(4); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("ran %d stages: %v", len(order), order)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, edge := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}, {"c", "d"}} {
		if pos[edge[0]] > pos[edge[1]] {
			t.Fatalf("%s ran after %s: %v", edge[0], edge[1], order)
		}
	}
}

func TestGraphDataFlowsAlongEdges(t *testing.T) {
	// Diamond: two producers feed a consumer; the consumer must observe
	// both writes for every worker count.
	for _, workers := range []int{1, 2, 8} {
		var x, y, sum int
		g := NewGraph()
		g.Add("x", func() error { x = 2; return nil })
		g.Add("y", func() error { y = 3; return nil })
		g.Add("sum", func() error { sum = x + y; return nil }, "x", "y")
		if err := g.Run(workers); err != nil {
			t.Fatal(err)
		}
		if sum != 5 {
			t.Fatalf("workers=%d: sum=%d", workers, sum)
		}
	}
}

func TestGraphBoundsConcurrency(t *testing.T) {
	const stages, workers = 12, 3
	var cur, max atomic.Int64
	g := NewGraph()
	for i := 0; i < stages; i++ {
		g.Add(string(rune('a'+i)), func() error {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Run(workers); err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent stages with %d workers", m, workers)
	}
}

func TestGraphFirstErrorCancelsPendingStages(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	g := NewGraph()
	g.Add("bad", func() error { return boom })
	g.Add("after", func() error { ran.Add(1); return nil }, "bad")
	g.Add("also-after", func() error { ran.Add(1); return nil }, "after")
	err := g.Run(1)
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("error does not name the stage: %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d dependent stages ran after the failure", ran.Load())
	}
}

func TestGraphCapturesPanics(t *testing.T) {
	g := NewGraph()
	g.Add("p", func() error { panic("kaboom") })
	err := g.Run(2)
	if err == nil || !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), `"p"`) {
		t.Fatalf("err=%v", err)
	}
}

func TestGraphRejectsBadShapes(t *testing.T) {
	g := NewGraph()
	g.Add("a", func() error { return nil }, "missing")
	if err := g.Run(1); err == nil || !strings.Contains(err.Error(), "unknown stage") {
		t.Fatalf("unknown dep accepted: %v", err)
	}

	g = NewGraph()
	g.Add("a", func() error { return nil }, "b")
	g.Add("b", func() error { return nil }, "a")
	if err := g.Run(1); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle accepted: %v", err)
	}

	g = NewGraph()
	g.Add("a", func() error { return nil }, "a")
	if err := g.Run(1); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("self-dependency accepted: %v", err)
	}

	g = NewGraph()
	g.Add("dup", func() error { return nil })
	g.Add("dup", func() error { return nil })
	if err := g.Run(1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate stage accepted: %v", err)
	}

	g = NewGraph()
	g.Add("nil", nil)
	if err := g.Run(1); err == nil {
		t.Fatal("nil stage func accepted")
	}
}

func TestGraphEmptyIsNoop(t *testing.T) {
	if err := NewGraph().Run(4); err != nil {
		t.Fatal(err)
	}
}

func TestGraphContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var late atomic.Int64
	g := NewGraph()
	g.Add("slow", func() error {
		close(started)
		<-release
		return nil
	})
	g.Add("after", func() error { late.Add(1); return nil }, "slow")
	done := make(chan error, 1)
	go func() { done <- g.RunContext(ctx, 2) }()
	<-started
	cancel()
	close(release)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
	if late.Load() != 0 {
		t.Fatal("dependent stage started after cancellation")
	}
}
