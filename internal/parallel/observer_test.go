package parallel

import (
	"errors"
	"sort"
	"sync"
	"testing"
)

// TestGraphObserver checks every stage is observed exactly once with a
// non-negative duration, including failed stages.
func TestGraphObserver(t *testing.T) {
	g := NewGraph()
	g.Add("a", func() error { return nil })
	g.Add("b", func() error { return nil }, "a")
	g.Add("c", func() error { return nil }, "a")
	var mu sync.Mutex
	got := map[string]float64{}
	g.SetObserver(func(stage string, seconds float64) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := got[stage]; dup {
			t.Errorf("stage %q observed twice", stage)
		}
		got[stage] = seconds
	})
	if err := g.Run(4); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(got))
	for name, secs := range got {
		names = append(names, name)
		if secs < 0 {
			t.Errorf("stage %q observed negative duration %g", name, secs)
		}
	}
	sort.Strings(names)
	if want := []string{"a", "b", "c"}; !equalStrings(names, want) {
		t.Fatalf("observed stages %v, want %v", names, want)
	}
}

// TestGraphObserverOnFailure: the failing stage is still observed.
func TestGraphObserverOnFailure(t *testing.T) {
	boom := errors.New("boom")
	g := NewGraph()
	g.Add("bad", func() error { return boom })
	var mu sync.Mutex
	observed := false
	g.SetObserver(func(stage string, _ float64) {
		mu.Lock()
		defer mu.Unlock()
		if stage == "bad" {
			observed = true
		}
	})
	if err := g.Run(1); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if !observed {
		t.Fatal("failed stage not observed")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
