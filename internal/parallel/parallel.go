// Package parallel provides the small concurrent runtime the study
// pipeline uses to fan generation and analysis out across cores while
// staying deterministic: chunked parallel map with stable output order,
// a bounded worker pool, fold/reduce over chunk partials, and sharded
// counters for hot aggregation paths.
//
// Determinism convention: callers split an rng stream per chunk *before*
// submitting work, so results are identical for any worker count —
// verified by the ablation bench and the equivalence tests.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns a sensible default worker count: GOMAXPROCS, floored
// at 1.
func Workers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// Map applies fn to each element of xs using at most workers goroutines
// and returns results in input order. A panicking fn is converted into an
// error carrying the panic value. The first error cancels outstanding
// work (already-started calls finish).
func Map[T, R any](workers int, xs []T, fn func(int, T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = Workers()
	}
	n := len(xs)
	out := make([]R, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				// fn panics are recovered per-call in safeCall; this
				// catches anything that escapes the worker loop itself so
				// a worker can never take the process down.
				if p := recover(); p != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("parallel: map worker panicked: %v", p))
					cancel()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				r, err := safeCall(i, xs[i], fn)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					cancel()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return nil, e.(error)
	}
	return out, nil
}

func safeCall[T, R any](i int, x T, fn func(int, T) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v", i, p)
		}
	}()
	return fn(i, x)
}

// Chunk describes a half-open index range [Lo, Hi) of a partitioned
// workload, plus its ordinal position.
type Chunk struct {
	Index  int
	Lo, Hi int
}

// Chunks partitions n items into at most parts contiguous chunks of
// near-equal size. It returns no chunk of zero width.
func Chunks(n, parts int) []Chunk {
	if n <= 0 {
		return nil
	}
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Chunk, 0, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Chunk{Index: i, Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// MapChunks runs fn over a contiguous partition of n items and returns
// one partial result per chunk in chunk order. It is the deterministic
// fan-out primitive: each chunk's fn receives its Chunk so the caller
// can derive a per-chunk RNG stream keyed by Chunk.Index.
func MapChunks[R any](workers, n int, fn func(Chunk) (R, error)) ([]R, error) {
	chunks := Chunks(n, workers)
	return Map(workers, chunks, func(_ int, c Chunk) (R, error) { return fn(c) })
}

// Fold reduces partial results sequentially in order, so any
// non-commutative merge is still deterministic.
func Fold[R, A any](partials []R, init A, merge func(A, R) A) A {
	acc := init
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc
}

// ErrPoolClosed is returned by Pool.Submit after Close.
var ErrPoolClosed = errors.New("parallel: pool closed")

// Pool is a bounded worker pool for heterogeneous background tasks.
// Tasks are arbitrary funcs; errors are collected and returned by Wait.
type Pool struct {
	tasks  chan func() error
	wg     sync.WaitGroup
	mu     sync.Mutex
	errs   []error
	closed bool
}

// NewPool starts workers goroutines servicing a queue of depth queue.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func() error, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			defer func() {
				// Task panics are recovered per-task in runTask; this
				// keeps a pool worker from ever killing the process.
				if r := recover(); r != nil {
					p.mu.Lock()
					p.errs = append(p.errs, fmt.Errorf("parallel: pool worker panicked: %v", r))
					p.mu.Unlock()
				}
			}()
			for t := range p.tasks {
				if err := runTask(t); err != nil {
					p.mu.Lock()
					p.errs = append(p.errs, err)
					p.mu.Unlock()
				}
			}
		}()
	}
	return p
}

func runTask(t func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: pool task panicked: %v", r)
		}
	}()
	return t()
}

// Submit enqueues a task, blocking if the queue is full. It returns
// ErrPoolClosed after Close.
func (p *Pool) Submit(t func() error) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrPoolClosed
	}
	p.tasks <- t
	return nil
}

// Close stops accepting tasks and waits for in-flight tasks to finish,
// returning the accumulated task errors joined together (nil if none).
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return errors.Join(p.errs...)
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return errors.Join(p.errs...)
}

// Counter is a sharded int64 counter that avoids cache-line contention
// on hot aggregation paths (e.g. counting jobs per class while scanning
// a trace concurrently).
type Counter struct {
	shards []paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so shards don't false-share
}

// NewCounter creates a counter with one shard per worker.
func NewCounter() *Counter {
	n := Workers()
	if n < 4 {
		n = 4
	}
	return &Counter{shards: make([]paddedInt64, n)}
}

// Add increments the counter by delta. shard selects which shard to hit;
// callers pass their worker index (any int is safe).
func (c *Counter) Add(shard int, delta int64) {
	if shard < 0 {
		shard = -shard
	}
	c.shards[shard%len(c.shards)].v.Add(delta)
}

// Value returns the current total across shards.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}
