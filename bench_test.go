package rcpt

// One benchmark per reconstructed table and figure (R-T1..T7, R-F1..F8),
// plus the three design-choice ablations from DESIGN.md. The per-
// experiment benches measure the render path over a shared study run;
// the ablations measure the underlying computation choices.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stagecache"
	"repro/internal/survey"
	"repro/internal/trace"
	"repro/internal/weighting"
)

var (
	benchOnce sync.Once
	benchArts *Artifacts
	benchErr  error
)

func benchArtifacts(b *testing.B) *Artifacts {
	b.Helper()
	benchOnce.Do(func() {
		cfg := Config{
			Seed:       42,
			N2011:      200,
			N2024:      600,
			TraceYears: []int{2011, 2015, 2019, 2024},
			SimYear:    2024,
			Policy:     EASYBackfill,
			Rake:       true,
			PanelN:     300,
			NoiseRate:  0.05,
		}
		benchArts, benchErr = Run(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchArts
}

func benchExperiment(b *testing.B, id string) {
	a := benchArtifacts(b)
	e, err := Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch e.Kind {
		case KindTable:
			tab, err := e.Table(a)
			if err != nil {
				b.Fatal(err)
			}
			if err := tab.WriteASCII(io.Discard); err != nil {
				b.Fatal(err)
			}
		case KindFigure:
			if err := e.Figure(a, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "T1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "T2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "T3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "T4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "T5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "T6") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "T7") }
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "F2") }
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "F3") }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "F4") }
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "F5") }
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "F6") }
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "F7") }
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "F8") }

// Extension experiments (see DESIGN.md "extensions" rows).
func BenchmarkTable8(b *testing.B)   { benchExperiment(b, "T8") }
func BenchmarkTable9(b *testing.B)   { benchExperiment(b, "T9") }
func BenchmarkTable10(b *testing.B)  { benchExperiment(b, "T10") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "F9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "F10") }
func BenchmarkTable11(b *testing.B)  { benchExperiment(b, "T11") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "F11") }
func BenchmarkTable12(b *testing.B)  { benchExperiment(b, "T12") }
func BenchmarkTable13(b *testing.B)  { benchExperiment(b, "T13") }
func BenchmarkTable14(b *testing.B)  { benchExperiment(b, "T14") }
func BenchmarkTable15(b *testing.B)  { benchExperiment(b, "T15") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "F12") }
func BenchmarkTable16(b *testing.B)  { benchExperiment(b, "T16") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "F13") }

// BenchmarkAblationBackfill compares the scheduler with and without EASY
// backfill on the same 2024 trace and reports the wait/utilization
// deltas as custom metrics.
func BenchmarkAblationBackfill(b *testing.B) {
	a := benchArtifacts(b)
	jobs := a.JobsByYr[2024]
	cluster := sched.DefaultCampusCluster()
	var fcfsWait, easyWait, fcfsUtil, easyUtil float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := sched.SimulateTable(cluster, jobs, sched.Options{Policy: sched.FCFS})
		if err != nil {
			b.Fatal(err)
		}
		e, err := sched.SimulateTable(cluster, jobs, sched.Options{Policy: sched.EASYBackfill})
		if err != nil {
			b.Fatal(err)
		}
		fcfsWait, easyWait = f.Metrics.MeanWait, e.Metrics.MeanWait
		fcfsUtil, easyUtil = f.Metrics.AvgCPUUtil, e.Metrics.AvgCPUUtil
	}
	b.ReportMetric(fcfsWait, "fcfs-mean-wait-s")
	b.ReportMetric(easyWait, "easy-mean-wait-s")
	b.ReportMetric(fcfsUtil*100, "fcfs-cpu-util-%")
	b.ReportMetric(easyUtil*100, "easy-cpu-util-%")
}

// BenchmarkAblationConservative measures the conservative-backfill
// variant against EASY on the same trace (stricter reservations cost
// scheduling time and some backfill opportunity).
func BenchmarkAblationConservative(b *testing.B) {
	a := benchArtifacts(b)
	jobs := a.JobsByYr[2024]
	cluster := sched.DefaultCampusCluster()
	var consWait, consBackfills float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sched.SimulateTable(cluster, jobs, sched.Options{Policy: sched.ConservativeBackfill})
		if err != nil {
			b.Fatal(err)
		}
		consWait = c.Metrics.MeanWait
		consBackfills = float64(c.Metrics.BackfillStarts)
	}
	b.ReportMetric(consWait, "cons-mean-wait-s")
	b.ReportMetric(consBackfills, "cons-backfills")
}

// BenchmarkAblationRaking measures how much post-stratification moves
// the estimates: the CS field share (directly distorted by response
// bias; the frame-true value is 10%) and the python share (nearly
// field-uniform, so raking barely moves it — the negative control).
func BenchmarkAblationRaking(b *testing.B) {
	g, err := population.NewGenerator(population.Model2024())
	if err != nil {
		b.Fatal(err)
	}
	ins := g.Instrument()
	var csRaw, csRaked, pyRaw, pyRaked float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := g.GenerateRespondents(rng.New(99), 600)
		if err != nil {
			b.Fatal(err)
		}
		share := func(qid, opt string) float64 {
			tab, err := ins.Tabulate(qid, rs)
			if err != nil {
				b.Fatal(err)
			}
			return tab.Share(opt)
		}
		csRaw = share(survey.QField, "computer science")
		pyRaw = share(survey.QLanguages, "python")
		m := population.Model2024()
		if _, err := weighting.Rake(rs, weighting.FrameMargins(m.FieldShare, m.CareerShare), weighting.Options{}); err != nil {
			b.Fatal(err)
		}
		csRaked = share(survey.QField, "computer science")
		pyRaked = share(survey.QLanguages, "python")
	}
	b.ReportMetric(csRaw*100, "unweighted-cs-%")
	b.ReportMetric(csRaked*100, "raked-cs-%")
	b.ReportMetric(pyRaw*100, "unweighted-python-%")
	b.ReportMetric(pyRaked*100, "raked-python-%")
}

// BenchmarkAblationParallelGen measures worker-count scaling of the
// deterministic population generator.
func BenchmarkAblationParallelGen(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			g, err := population.NewGenerator(population.Model2024())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.GenerateParallel(7, 500, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullPipeline measures an end-to-end small study run.
func BenchmarkFullPipeline(b *testing.B) {
	cfg := Config{
		Seed: 1, N2011: 60, N2024: 120,
		TraceYears: []int{2011, 2024}, SimYear: 2024,
		Policy: EASYBackfill, Rake: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunColdVsWarmStageCache measures incremental recomputation
// through the Merkle stage cache on the same small study as
// BenchmarkFullPipeline. "cold" fills a fresh cache every iteration
// (the overhead side: every stage computes and stores); "warm" restores
// every stage from a pre-filled cache; "policy-change" re-runs against
// a filled cache with one late-DAG parameter changed, so only the
// sim-policy stage recomputes. The warm/cold ns_per_op ratio in
// BENCH_incr.json is the headline speedup; artifact identity across
// the cache is pinned by core's equivalence tests and spot-checked
// here via the accounting-table hash.
func BenchmarkRunColdVsWarmStageCache(b *testing.B) {
	base := core.Config{
		Seed: 1, N2011: 60, N2024: 120,
		TraceYears: []int{2011, 2024}, SimYear: 2024,
		Policy: EASYBackfill, Rake: true,
	}
	newCache := func(b *testing.B) *stagecache.Cache {
		c, err := stagecache.New(stagecache.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	run := func(b *testing.B, cfg core.Config, cache core.StageCache) *core.Artifacts {
		a, err := core.RunWithOptions(context.Background(), cfg, core.RunOptions{StageCache: cache})
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	jobsHash := func(b *testing.B, a *Artifacts) uint64 {
		h, err := a.Jobs.Hash()
		if err != nil {
			b.Fatal(err)
		}
		return h
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := newCache(b)
			b.StartTimer()
			run(b, base, cache)
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := newCache(b)
		want := jobsHash(b, run(b, base, cache))
		b.ResetTimer()
		var got *Artifacts
		for i := 0; i < b.N; i++ {
			got = run(b, base, cache)
		}
		b.StopTimer()
		if jobsHash(b, got) != want {
			b.Fatal("warm run diverged from the cold run that filled its cache")
		}
	})
	b.Run("policy-change", func(b *testing.B) {
		cache := newCache(b)
		run(b, base, cache)
		changed := base
		changed.Policy = FCFS
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, changed, cache)
		}
	})
}

// BenchmarkRunStaged and BenchmarkRunSequential compare the stage-graph
// executor with multiple workers against the sequential reference
// execution of the same graph. Both produce byte-identical artifacts
// (see core's TestRunWorkerCountEquivalence); only wall-clock differs,
// and only when GOMAXPROCS allows real parallelism.
func BenchmarkRunStaged(b *testing.B) {
	cfg := Config{
		Seed: 1, N2011: 60, N2024: 120,
		TraceYears: []int{2011, 2024}, SimYear: 2024,
		Policy: EASYBackfill, Rake: true,
		Workers: 8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSequential(b *testing.B) {
	cfg := Config{
		Seed: 1, N2011: 60, N2024: 120,
		TraceYears: []int{2011, 2024}, SimYear: 2024,
		Policy: EASYBackfill, Rake: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunSequential(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures the accounting generator alone.
func BenchmarkTraceGeneration(b *testing.B) {
	m := trace.CampusModel(2024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(rng.New(uint64(i)), 0); err != nil {
			b.Fatal(err)
		}
	}
}
