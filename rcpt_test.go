package rcpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAll(t *testing.T) {
	cfg := Config{
		Seed: 3, N2011: 80, N2024: 160,
		TraceYears: []int{2011, 2015, 2019, 2024}, SimYear: 2024, PanelN: 100,
		Policy: EASYBackfill, Rake: true,
	}
	arts, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := WriteAll(arts, dir)
	if err != nil {
		t.Fatal(err)
	}
	// 16 tables × 2 formats + 13 figures + index.html + REPORT.md = 47 files.
	if len(files) != 47 {
		t.Fatalf("wrote %d files: %v", len(files), files)
	}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("empty artifact %s", f)
		}
	}
	// Spot-check artifact contents.
	b, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "python") {
		t.Fatalf("table2 missing python:\n%s", b)
	}
	b, err = os.ReadFile(filepath.Join(dir, "figure1.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "<svg") {
		t.Fatal("figure1 is not svg")
	}
	b, err = os.ReadFile(filepath.Join(dir, "REPORT.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "### Table 2") || !strings.Contains(string(b), "| python |") {
		t.Fatal("REPORT.md missing table content")
	}
}

func TestLookupAndRegistry(t *testing.T) {
	if len(Experiments()) != 29 {
		t.Fatalf("%d experiments", len(Experiments()))
	}
	e, err := Lookup("F3")
	if err != nil || e.Kind != KindFigure {
		t.Fatalf("lookup: %v %v", e, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestByteDeterminism asserts the strongest reproducibility claim: two
// independent runs of the same config produce byte-identical artifacts.
func TestByteDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 11, N2011: 60, N2024: 90,
		TraceYears: []int{2011, 2015, 2019, 2024}, SimYear: 2024,
		Policy: EASYBackfill, Rake: true, PanelN: 40, NoiseRate: 0.1,
	}
	render := func() map[string][]byte {
		arts, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		files, err := WriteAll(arts, dir)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(f)] = b
		}
		return out
	}
	a := render()
	b := render()
	if len(a) != len(b) {
		t.Fatalf("file counts differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if string(b[name]) != string(data) {
			t.Fatalf("artifact %s differs between identical runs", name)
		}
	}
}
