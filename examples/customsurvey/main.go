// Customsurvey: adapt the toolkit to your own questionnaire. Defines a
// fresh instrument (not the canonical rcpt one), creates and validates
// responses by hand, exports/imports them as NDJSON, then runs the
// standard analysis machinery — tabulation, cross-tabulation with a
// chi-square test, and a jackknife standard error — exactly as a
// downstream group would on their own form export.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/survey"
	"repro/internal/weighting"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Define your own instrument.
	ins, err := survey.NewInstrument("lab-retreat-2026", []survey.Question{
		{ID: "role", Text: "Your role", Kind: survey.SingleChoice,
			Options: []string{"student", "staff"}, Required: true},
		{ID: "editor", Text: "Primary editor", Kind: survey.SingleChoice,
			Options: []string{"vscode", "vim", "emacs", "jupyter"}, Required: true},
		{ID: "pain", Text: "Biggest pain points (select all)", Kind: survey.MultiChoice,
			Options: []string{"builds", "data access", "cluster queue", "documentation"}},
		{ID: "satisfaction", Text: "Tooling satisfaction", Kind: survey.Likert, Scale: 7},
	})
	if err != nil {
		return err
	}
	fmt.Print(ins.Codebook())

	// 2. Create responses (here synthesized; a real deployment would
	// decode its form export into the same Response type).
	r := rng.New(2026)
	editorByRole := map[string]*rng.Categorical{
		"student": rng.MustCategorical(map[string]float64{
			"vscode": 0.5, "jupyter": 0.3, "vim": 0.15, "emacs": 0.05}),
		"staff": rng.MustCategorical(map[string]float64{
			"vscode": 0.3, "jupyter": 0.1, "vim": 0.4, "emacs": 0.2}),
	}
	var responses []*survey.Response
	for i := 0; i < 400; i++ {
		resp := survey.NewResponse(fmt.Sprintf("r%03d", i), 2026)
		role := "student"
		if r.Bool(0.35) {
			role = "staff"
		}
		resp.SetChoice("role", role)
		resp.SetChoice("editor", editorByRole[role].Draw(r))
		var pains []string
		for _, p := range []string{"builds", "data access", "cluster queue", "documentation"} {
			if r.Bool(0.3) {
				pains = append(pains, p)
			}
		}
		resp.SetChoices("pain", pains)
		resp.SetRating("satisfaction", 1+r.Intn(7))
		if errs := ins.Validate(resp); len(errs) > 0 {
			return fmt.Errorf("invalid response: %v", errs[0])
		}
		responses = append(responses, resp)
	}

	// 3. Round-trip through NDJSON, as a form export would arrive.
	var buf bytes.Buffer
	if err := ins.WriteJSON(&buf, responses); err != nil {
		return err
	}
	responses, err = ins.ReadJSON(&buf)
	if err != nil {
		return err
	}

	// 4. Tabulate the editor question.
	tab, err := ins.Tabulate("editor", responses)
	if err != nil {
		return err
	}
	out := report.NewTable("Primary editor", "editor", "share")
	for _, opt := range tab.Options() {
		out.MustAddRow(opt, report.Pct(tab.Share(opt)))
	}
	if err := out.WriteASCII(os.Stdout); err != nil {
		return err
	}

	// 5. Cross-tabulate editor by role and test independence.
	ct, err := ins.CrossTabulate("role", "editor", responses)
	if err != nil {
		return err
	}
	rows, cols, counts := ct.Flatten()
	cont, err := stats.FromCounts(len(rows), len(cols), counts)
	if err != nil {
		return err
	}
	chi, err := cont.ChiSquare()
	if err != nil {
		return err
	}
	fmt.Printf("\nrole x editor: chi2=%.1f df=%d p=%s V=%.2f\n",
		chi.Stat, chi.DF, report.PValue(chi.P), chi.CramerV)
	fmt.Printf("P(vim | staff)=%.0f%%  P(vim | student)=%.0f%%\n",
		ct.RowShare("staff", "vim")*100, ct.RowShare("student", "vim")*100)

	// 6. Jackknife SE on a share.
	jk, err := weighting.JackknifeSE(rng.New(7), responses, 20,
		weighting.ShareEstimator(ins, "pain", "cluster queue"))
	if err != nil {
		return err
	}
	fmt.Printf("\ncluster-queue pain: %.1f%% (jackknife SE %.1fpp, %d groups)\n",
		jk.Estimate*100, jk.SE*100, jk.Groups)
	return nil
}
