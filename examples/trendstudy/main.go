// Trendstudy: the paper's headline analysis as a standalone program.
// Generates both cohorts, rakes them to the institutional frame, and
// prints the cross-cohort deltas for languages, parallelism, and
// engineering practices with confidence intervals, odds ratios, and
// FDR-corrected significance.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/survey"
	"repro/internal/trend"
	"repro/internal/weighting"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cohort := func(m *population.Model, seed uint64, n int) ([]*surveyResponse, error) {
		g, err := population.NewGenerator(m)
		if err != nil {
			return nil, err
		}
		rs, err := g.GenerateRespondents(rng.New(seed), n)
		if err != nil {
			return nil, err
		}
		if _, err := weighting.Rake(rs,
			weighting.FrameMargins(m.FieldShare, m.CareerShare),
			weighting.Options{TrimRatio: 6}); err != nil {
			return nil, err
		}
		return rs, nil
	}
	r11, err := cohort(population.Model2011(), 2011, 200)
	if err != nil {
		return err
	}
	r24, err := cohort(population.Model2024(), 2024, 600)
	if err != nil {
		return err
	}
	ins := survey.Canonical()

	for _, block := range []struct {
		title string
		qid   string
	}{
		{"Programming languages", survey.QLanguages},
		{"Parallelism & hardware", survey.QParallelism},
		{"Engineering practices", survey.QPractices},
	} {
		deltas, err := trend.CompareCohorts(ins, block.qid, nil, r11, r24)
		if err != nil {
			return err
		}
		tab := report.NewTable(block.title+" — 2011 vs 2024",
			"option", "2011", "2024", "delta", "OR", "q")
		for _, d := range deltas {
			tab.MustAddRow(d.Option, report.Pct(d.ShareA), report.Pct(d.ShareB),
				fmt.Sprintf("%+.1fpp", d.Diff*100), report.F(d.OddsRatio, 2),
				report.PValue(d.Q))
		}
		if err := tab.WriteASCII(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// surveyResponse is a local alias keeping the cohort helper readable.
type surveyResponse = survey.Response
