// Deptcompare: field-by-field practice comparison with multiple-testing
// control. For each engineering practice, tests whether adoption varies
// across research fields in the 2024 cohort, reports per-field shares
// with Wilson intervals, and applies Benjamini–Hochberg across all
// (practice, field) tests — the analysis behind "which departments need
// software-engineering support".
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/survey"
	"repro/internal/textcode"
	"repro/internal/trend"
	"repro/internal/weighting"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m := population.Model2024()
	g, err := population.NewGenerator(m)
	if err != nil {
		return err
	}
	rs, err := g.GenerateRespondents(rng.New(99), 1200)
	if err != nil {
		return err
	}
	if _, err := weighting.Rake(rs,
		weighting.FrameMargins(m.FieldShare, m.CareerShare),
		weighting.Options{TrimRatio: 6}); err != nil {
		return err
	}
	ins := g.Instrument()

	for _, practice := range []string{"version control", "automated testing", "continuous integration"} {
		rows, err := trend.ByField(ins, survey.QPractices, practice, rs)
		if err != nil {
			return err
		}
		tab := report.NewTable(fmt.Sprintf("%s by field (2024, weighted)", practice),
			"field", "share", "95% CI", "eff. n", "q vs rest")
		for _, fb := range rows {
			tab.MustAddRow(fb.Field, report.Pct(fb.Share), report.CI(fb.CI.Lo, fb.CI.Hi),
				report.F(fb.EffN, 0), report.PValue(fb.Q))
		}
		if err := tab.WriteASCII(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	// Code the free-text bottlenecks and show the category mix.
	tax := textcode.BottleneckTaxonomy()
	var texts []string
	for _, r := range rs {
		if t := r.Text(survey.QBottleneck); t != "" {
			texts = append(texts, t)
		}
	}
	counts, uncoded := tax.CodeAll(texts)
	tab := report.NewTable("Reported bottlenecks (coded from free text)", "category", "respondents", "share")
	total := len(texts)
	for _, c := range tax.Categories() {
		tab.MustAddRow(c, fmt.Sprint(counts[c]), report.Pct(float64(counts[c])/float64(total)))
	}
	tab.Footnote = fmt.Sprintf("%d texts, %d uncoded", total, uncoded)
	return tab.WriteASCII(os.Stdout)
}
