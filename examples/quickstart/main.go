// Quickstart: run the full study with the default configuration and
// write every table and figure to ./out. This is the five-line version
// of everything the library does.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	arts, err := rcpt.Run(rcpt.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	files, err := rcpt.WriteAll(arts, "out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("study complete: %d respondents (2011) + %d (2024), %d jobs, %d artifacts\n",
		len(arts.Cohort2011), len(arts.Cohort2024), arts.JobCount(), len(files))
	for _, f := range files {
		fmt.Println(" ", f)
	}
}
