// Apiclient: drive the rcpt-serve HTTP API end to end. By default it
// starts an in-process server on an ephemeral port (with a small, fast
// configuration) so the example is self-contained; point -addr at a
// running `rcpt-serve` to exercise a real daemon instead.
//
// The walk-through: list experiments, fetch a table as JSON twice to
// demonstrate the ETag/304 round-trip, launch a parameterized run and
// fetch a table from it, validate survey responses, and call a stats
// endpoint.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", "", "address of a running rcpt-serve (empty: start one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		var shutdown func() error
		var err error
		base, shutdown, err = startLocal()
		if err != nil {
			return err
		}
		defer func() {
			if err := shutdown(); err != nil {
				log.Printf("shutdown: %v", err)
			}
		}()
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	// 1. What does this server expose?
	var experiments []struct {
		ID, Title, Kind, Path string
	}
	if err := getJSON(client, base+"/v1/experiments", &experiments); err != nil {
		return err
	}
	fmt.Printf("server exposes %d experiments; first few:\n", len(experiments))
	for _, e := range experiments[:min(3, len(experiments))] {
		fmt.Printf("  %-4s %-6s %s\n", e.ID, e.Kind, e.Title)
	}

	// 2. A table as JSON — then again with If-None-Match to show the
	// cache answering 304 from the content-hash ETag.
	resp, err := client.Get(base + "/v1/tables/T5?format=json")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/tables/T5: %s: %s", resp.Status, body)
	}
	etag := resp.Header.Get("ETag")
	fmt.Printf("\nT5 (%d bytes, ETag %.18s…):\n%s", len(body), etag, firstLines(body, 3))

	req, err := http.NewRequest(http.MethodGet, base+"/v1/tables/T5?format=json", nil)
	if err != nil {
		return err
	}
	req.Header.Set("If-None-Match", etag)
	resp2, err := client.Do(req)
	if err != nil {
		return err
	}
	if err := resp2.Body.Close(); err != nil {
		return err
	}
	fmt.Printf("revalidation with If-None-Match: %s\n", resp2.Status)

	// 3. A parameterized run: different seed, smaller cohorts. The
	// response carries the run's fingerprint; tables of that run are
	// addressable via ?run=<fingerprint>.
	var summary struct {
		Fingerprint string
		Scheduler   struct {
			Policy   string
			MeanWait float64
			P95Wait  float64
		}
	}
	runReq := `{"seed": 7, "n2011": 40, "n2024": 60}`
	if err := postJSON(client, base+"/v1/run", runReq, &summary); err != nil {
		return err
	}
	fmt.Printf("\nrun %.12s…: policy=%s meanWait=%.1f p95Wait=%.1f\n",
		summary.Fingerprint, summary.Scheduler.Policy,
		summary.Scheduler.MeanWait, summary.Scheduler.P95Wait)

	var table struct {
		Title string
		Rows  [][]string
	}
	if err := getJSON(client, base+"/v1/tables/T1?run="+summary.Fingerprint, &table); err != nil {
		return err
	}
	fmt.Printf("T1 of that run: %q, %d rows\n", table.Title, len(table.Rows))

	// 4. Survey-response validation: two synthesized well-formed
	// responses plus one hand-broken line (an off-instrument field
	// choice, and every required question unanswered).
	ndjson, err := buildResponses()
	if err != nil {
		return err
	}
	var report struct {
		Received, Valid, Invalid int
		Results                  []struct {
			ID     string
			Valid  bool
			Errors []struct{ Question, Reason string }
		}
	}
	if err := postJSON(client, base+"/v1/responses", ndjson, &report); err != nil {
		return err
	}
	fmt.Printf("\nvalidated %d responses: %d valid, %d invalid\n",
		report.Received, report.Valid, report.Invalid)
	for _, res := range report.Results {
		for _, e := range res.Errors[:min(2, len(res.Errors))] {
			fmt.Printf("  %s/%s: %s\n", res.ID, e.Question, e.Reason)
		}
	}

	// 5. Stats on demand: the paper's Python-vs-MATLAB shift as a 2×2.
	var chi struct {
		Stat, P, CramerV float64
		DF               int
	}
	if err := getJSON(client, base+"/v1/stats/chisquare?rows=2&cols=2&counts=30,45,82,20", &chi); err != nil {
		return err
	}
	fmt.Printf("\nchi-square(30,45 / 82,20): stat=%.2f df=%d p=%.4g V=%.3f\n",
		chi.Stat, chi.DF, chi.P, chi.CramerV)
	return nil
}

// buildResponses synthesizes two valid 2024 responses with the study's
// population generator, serializes them as NDJSON, and appends one
// deliberately broken line.
func buildResponses() (string, error) {
	gen, err := population.NewGenerator(population.Model2024())
	if err != nil {
		return "", err
	}
	responses, err := gen.GenerateRespondents(rng.New(11), 2)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := gen.Instrument().WriteJSON(&buf, responses); err != nil {
		return "", err
	}
	buf.WriteString(`{"id":"r-bad","cohort":2024,"weight":1,"answers":{"field":{"kind":"single","choice":"astrology"}}}` + "\n")
	return buf.String(), nil
}

// startLocal boots an in-process server on an ephemeral port with a
// deliberately small configuration so the example runs in seconds.
func startLocal() (addr string, shutdown func() error, err error) {
	cfg := rcpt.DefaultConfig()
	cfg.N2011, cfg.N2024 = 40, 60
	cfg.TraceYears = []int{2011}
	cfg.SimYear = 2011
	cfg.PanelN = 0

	srv, err := serve.New(serve.Options{BaseConfig: cfg})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	serveErr := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				serveErr <- fmt.Errorf("serve panicked: %v", p)
			}
		}()
		serveErr <- srv.Serve(ln)
	}()
	fmt.Printf("started in-process rcpt-serve on %s\n\n", ln.Addr())
	return ln.Addr().String(), func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-serveErr
	}, nil
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return decodeBody(resp, url, out)
}

// postJSON posts a body and decodes the JSON response into out.
func postJSON(client *http.Client, url, body string, out any) error {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	return decodeBody(resp, url, out)
}

func decodeBody(resp *http.Response, url string, out any) error {
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	// /v1/responses answers 422 when some responses are invalid — for
	// this walk-through that body is still the payload we want to show.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}

func firstLines(b []byte, n int) string {
	lines := strings.SplitAfterN(string(b), "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "")
}
