// Panelstudy: within-person change analysis. Generates a longitudinal
// panel (the same researchers observed in 2011 and 2024), prints each
// language's retention and fresh-adoption rates with confidence
// intervals, the headline switcher counts, and the full transition
// matrix — the analysis repeated cross-sections cannot do.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/survey"
	"repro/internal/trend"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pg, err := population.NewPanelGenerator(
		population.Model2011(), population.Model2024(),
		population.PanelOptions{Persistence: 0.6})
	if err != nil {
		return err
	}
	panel, err := pg.Generate(rng.New(2024), 500)
	if err != nil {
		return err
	}
	w1 := population.Wave1Responses(panel)
	w2 := population.Wave2Responses(panel)
	ins := pg.Instrument()

	// Retention/adoption per language.
	rets, err := trend.Retentions(ins, survey.QLanguages, w1, w2)
	if err != nil {
		return err
	}
	tab := report.NewTable("Language dynamics within the panel (n=500)",
		"language", "kept", "adopted", "wave-1 users")
	for _, r := range rets {
		if r.HadN == 0 {
			continue
		}
		tab.MustAddRow(r.Option, report.Pct(r.Keep), report.Pct(r.Adopt),
			fmt.Sprintf("%d", r.HadN))
	}
	if err := tab.WriteASCII(os.Stdout); err != nil {
		return err
	}

	// Headline switcher flows.
	fmt.Println()
	for _, pair := range [][2]string{
		{"matlab", "python"}, {"fortran", "python"}, {"perl", "python"},
	} {
		ab, ba, err := trend.NetSwitchers(survey.QLanguages, pair[0], pair[1], w1, w2)
		if err != nil {
			return err
		}
		fmt.Printf("%s -> %s switchers: %d (reverse: %d)\n", pair[0], pair[1], ab, ba)
	}

	// Transition matrix for the main languages.
	opts := []string{"python", "matlab", "fortran", "c", "r"}
	m, err := trend.TransitionMatrix(ins, survey.QLanguages, opts, w1, w2)
	if err != nil {
		return err
	}
	fmt.Println()
	tm := report.NewTable("P(uses column in 2024 | used row in 2011)",
		append([]string{"2011 \\ 2024"}, opts...)...)
	for i, row := range m {
		cells := []string{opts[i]}
		for _, v := range row {
			cells = append(cells, report.Pct(v))
		}
		tm.MustAddRow(cells...)
	}
	return tm.WriteASCII(os.Stdout)
}
