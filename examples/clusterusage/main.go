// Clusterusage: a telemetry-only study. Generates multi-year accounting
// data and module-load logs, summarizes the workload evolution, runs the
// scheduler simulator under both policies, and writes the GPU-adoption
// and job-size figures — no survey involved, the workflow a research-
// computing group would run on their own logs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/modlog"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	years := []int{2011, 2015, 2019, 2024}
	root := rng.New(7)

	// Accounting data per year.
	var jobs []trace.Job
	byYear := map[int][]trace.Job{}
	for _, y := range years {
		js, err := trace.CampusModel(y).Generate(root.SplitNamed(fmt.Sprintf("t%d", y)), uint64(y)*1_000_000)
		if err != nil {
			return err
		}
		jobs = append(jobs, js...)
		byYear[y] = js
	}
	sums := trace.SummarizeByYear(jobs)
	tab := report.NewTable("Workload evolution", "year", "jobs", "cpu-h", "gpu-h", "gpu jobs")
	for _, s := range sums {
		tab.MustAddRow(fmt.Sprint(s.Year), fmt.Sprint(s.Jobs),
			report.F(s.CPUHours, 0), report.F(s.GPUHours, 0), report.Pct(s.GPUJobShare))
	}
	if err := tab.WriteASCII(os.Stdout); err != nil {
		return err
	}

	// Scheduler comparison on the latest year.
	fmt.Println()
	cluster := sched.DefaultCampusCluster()
	cmp := report.NewTable("Scheduler comparison (2024 month)",
		"policy", "mean wait (h)", "p95 wait (h)", "cpu util", "backfills")
	for _, p := range []sched.Policy{sched.FCFS, sched.EASYBackfill} {
		res, err := sched.Simulate(cluster, byYear[2024], sched.Options{Policy: p})
		if err != nil {
			return err
		}
		cmp.MustAddRow(p.String(), report.F(res.Metrics.MeanWait/3600, 2),
			report.F(res.Metrics.P95Wait/3600, 2), report.Pct(res.Metrics.AvgCPUUtil),
			fmt.Sprint(res.Metrics.BackfillStarts))
	}
	if err := cmp.WriteASCII(os.Stdout); err != nil {
		return err
	}

	// Module telemetry trend figure.
	var events []modlog.Event
	for _, y := range years {
		ev, err := modlog.CampusModulesModel(y).Generate(root.SplitNamed(fmt.Sprintf("m%d", y)))
		if err != nil {
			return err
		}
		events = append(events, ev...)
	}
	agg := modlog.AggregateByYear(events)
	if err := os.MkdirAll("out", 0o755); err != nil {
		return err
	}
	xs := make([]float64, len(agg))
	for i, ys := range agg {
		xs[i] = float64(ys.Year)
	}
	var series []report.LineSeries
	for _, m := range []string{"python", "matlab", "fortran", "cuda"} {
		_, shares := modlog.Series(agg, m)
		series = append(series, report.LineSeries{Name: m, Ys: shares})
	}
	f, err := os.Create(filepath.Join("out", "module-trend.svg"))
	if err != nil {
		return err
	}
	// A deferred close that drops its error can silently truncate the
	// buffered SVG; fold it into the function result instead.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := report.LineChart(f, "Module adoption", xs, series, "year", "share of users", true); err != nil {
		return err
	}

	// Job-size CDF figure for the two endpoint years.
	var cdfSeries []report.LineSeries
	var pointSets [][]float64
	for _, y := range []int{2011, 2024} {
		cores := make([]float64, len(byYear[y]))
		for i, j := range byYear[y] {
			cores[i] = float64(j.Cores())
		}
		pts, probs, err := stats.ECDF(cores)
		if err != nil {
			return err
		}
		k := len(pts)/300 + 1
		var tp, tq []float64
		for i := 0; i < len(pts); i += k {
			tp = append(tp, pts[i])
			tq = append(tq, probs[i])
		}
		cdfSeries = append(cdfSeries, report.LineSeries{Name: fmt.Sprint(y), Ys: tq})
		pointSets = append(pointSets, tp)
	}
	f2, err := os.Create(filepath.Join("out", "job-size-cdf.svg"))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f2.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := report.CDFChart(f2, "Job-size CDF", cdfSeries, pointSets, "cores (log)"); err != nil {
		return err
	}
	fmt.Println("\nwrote out/module-trend.svg and out/job-size-cdf.svg")
	return nil
}
