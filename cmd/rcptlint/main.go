// rcptlint enforces the pipeline's reproducibility contract with the
// analyzer suite in internal/analysis: maporder, rngpurity, splitshare,
// floatfold, and errdrop. It loads and type-checks packages with the
// module-aware loader (no go tool invocation, std-lib only) and prints
// findings as "file:line: [analyzer] message".
//
// Usage:
//
//	rcptlint [-json] [-list] [packages...]
//
// Package patterns ("./...", "./internal/core", ...) resolve relative to
// the working directory; the default is "./...". Exit status: 0 clean,
// 1 findings, 2 load or type-check failure. Suppress a single finding
// with an inline "//rcpt:allow <analyzer>" comment on (or directly
// above) the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}

	// A package that does not type-check cannot be analyzed reliably;
	// report the diagnostics gracefully and fail hard.
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "rcptlint: typecheck %s: %v\n", pkg.PkgPath, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings, wd); err != nil {
			fmt.Fprintln(os.Stderr, "rcptlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rcptlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
