// rcptlint enforces the pipeline's reproducibility contract with the
// analyzer suite in internal/analysis: the syntactic rules (maporder,
// rngpurity, errdrop, panicsafe) and the interprocedural dataflow rules
// (nondetflow, ctxprop, shardpure, splitshare, floatfold) built on the
// call-graph engine in internal/analysis/flow. It loads and type-checks
// packages with the module-aware loader (no go tool invocation, std-lib
// only) and prints findings as "file:line: [analyzer] message".
//
// Usage:
//
//	rcptlint [-json] [-sarif] [-strict] [-timing] [-budget seconds] [-list] [packages...]
//
// Package patterns ("./...", "./internal/core", ...) resolve relative to
// the working directory; the default is "./...". Exit status: 0 clean,
// 1 findings (or a -strict/-budget failure), 2 load or type-check
// failure. Suppress a single finding with an inline "//rcpt:allow
// <analyzer>" comment on (or directly above) the flagged line; under
// -strict, a directive that suppresses nothing is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (code-scanning upload)")
	strict := flag.Bool("strict", false, "treat stale //rcpt:allow directives as findings")
	timing := flag.Bool("timing", false, "print per-analyzer wall times to stderr")
	budget := flag.Float64("budget", 0, "fail if total analysis wall time exceeds this many seconds")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "rcptlint: -json and -sarif are mutually exclusive")
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}

	// A package that does not type-check cannot be analyzed reliably;
	// report the diagnostics gracefully and fail hard.
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "rcptlint: typecheck %s: %v\n", pkg.PkgPath, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	// Loaded() adds the module-internal dependencies of the requested
	// patterns to the dataflow engine, so interprocedural summaries are
	// identical whether you lint ./... or a single package.
	suite, err := analysis.RunSuite(pkgs, analysis.All(), loader.Loaded()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcptlint:", err)
		return 2
	}
	findings := suite.Findings
	if *strict {
		findings = append(findings, suite.Stale...)
	}

	var total float64
	for _, tm := range suite.Timings {
		total += tm.Seconds
		if *timing {
			fmt.Fprintf(os.Stderr, "rcptlint: timing %-11s %7.3fs\n", tm.Analyzer, tm.Seconds)
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "rcptlint: timing %-11s %7.3fs\n", "total", total)
	}

	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(os.Stdout, findings, wd); err != nil {
			fmt.Fprintln(os.Stderr, "rcptlint:", err)
			return 2
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, findings, analysis.All(), wd); err != nil {
			fmt.Fprintln(os.Stderr, "rcptlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel.String())
		}
	}

	status := 0
	if len(findings) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "rcptlint: %d finding(s)\n", len(findings))
		}
		status = 1
	}
	if *budget > 0 && total > *budget {
		fmt.Fprintf(os.Stderr, "rcptlint: analysis took %.3fs, over the %.3fs budget\n", total, *budget)
		status = 1
	}
	return status
}
