// rcpt-report runs the full study pipeline and regenerates every table
// and figure of the reconstructed evaluation into an output directory.
//
// Usage:
//
//	rcpt-report [-out out] [-seed 42] [-n2011 200] [-n2024 600] [-only T2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-report:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "out", "output directory for tables and figures")
	seed := flag.Uint64("seed", 42, "study seed (all generation is deterministic in it)")
	n2011 := flag.Int("n2011", 200, "2011 cohort size")
	n2024 := flag.Int("n2024", 600, "2024 cohort size")
	only := flag.String("only", "", "render a single experiment (e.g. T2 or F3) to stdout")
	noRake := flag.Bool("norake", false, "disable post-stratification (ablation)")
	workers := flag.Int("workers", 0, "generation workers (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := rcpt.DefaultConfig()
	cfg.Seed = *seed
	cfg.N2011 = *n2011
	cfg.N2024 = *n2024
	cfg.Rake = !*noRake
	cfg.Workers = *workers

	fmt.Fprintf(os.Stderr, "running study: seed=%d cohorts=%d/%d years=%v\n",
		cfg.Seed, cfg.N2011, cfg.N2024, cfg.TraceYears)
	arts, err := rcpt.Run(cfg)
	if err != nil {
		return err
	}

	if *only != "" {
		e, err := rcpt.Lookup(*only)
		if err != nil {
			return err
		}
		switch e.Kind {
		case rcpt.KindTable:
			tab, err := e.Table(arts)
			if err != nil {
				return err
			}
			return tab.WriteASCII(os.Stdout)
		default:
			return e.Figure(arts, os.Stdout)
		}
	}

	files, err := rcpt.WriteAll(arts, *out)
	if err != nil {
		return err
	}
	for _, f := range files {
		fmt.Println(f)
	}
	fmt.Fprintf(os.Stderr, "wrote %d artifacts to %s\n", len(files), *out)
	fmt.Fprintf(os.Stderr, "scheduler: %s mean wait %.0fs vs fcfs %.0fs; cpu util %.1f%%\n",
		arts.Sim.Metrics.Policy, arts.Sim.Metrics.MeanWait,
		arts.SimFCFS.Metrics.MeanWait, arts.Sim.Metrics.AvgCPUUtil*100)
	return nil
}
