// rcpt-serve runs the study apparatus as a long-running HTTP service:
// tables and figures off a cached deterministic pipeline run,
// parameterized runs, survey-response validation, on-demand statistics,
// and Prometheus metrics.
//
// Usage:
//
//	rcpt-serve [-addr :8080] [-seed 42] [-n2011 200] [-n2024 600]
//	           [-years 2011,2013,...] [-cache-mb 64] [-warm]
//	           [-run-timeout 0] [-cache-dir DIR] [-stage-retries N]
//	           [-stage-cache] [-stage-cache-dir DIR] [-stage-cache-mb 256]
//	           [-breaker-threshold 3] [-breaker-cooldown 30s]
//	           [-chaos "seed=1,panic=0.05,error=0.05"]
//	           [-pprof localhost:6060]
//	           [-trace-scale N] [-spill-dir DIR] [-table-shards N]
//	           [-batch-rows N]
//	           [-peers URL,URL,...] [-join URL,URL,...] [-self URL]
//	           [-peer-secret S] [-lease-ttl 15s] [-peer-stage-limit 4]
//	           [-peer-suspect-timeout 10s] [-readyz-quorum]
//
// -peers or -join turns on distributed serving (see internal/cluster).
// -peers seeds the membership statically: the comma-separated list is
// the initial ring, -self is this replica's own advertised base URL
// (it must appear in -peers). -join instead bootstraps dynamically:
// the replica starts as a ring of one and announces itself to any of
// the listed seed replicas, learning the rest of the membership over
// gossip — so a 3-replica ring is one replica with -peers $SELF and
// two more with -join $FIRST. Either way membership is dynamic after
// boot: SWIM-style probing (direct, then indirect through peers)
// moves unresponsive members alive→suspect→dead and gossips the
// change, and the consistent hash ring is rebuilt under a
// content-derived epoch that every replica converges to without
// coordination. A config fingerprint routes to an authority replica,
// non-authorities fill their caches from it (fills carry the epoch, so
// a fill that straddles a handover is redirected, not recomputed),
// compute leases keep duplicate pipeline runs off the ring even when
// the authority dies, and trace stages are work-stolen by idle peers.
// Replicas share no state — determinism is the replication protocol —
// so any replica can always fall back to serving alone.
// -peer-suspect-timeout is how long a suspect member has to refute
// before it is declared dead and leaves the ring. -readyz-quorum makes
// /readyz fail (503) on quorum loss instead of reporting degraded
// detail with a 200.
//
// -trace-scale replicates every trace year N× (a 100× or 1000×
// synthetic trace for scaling studies); -spill-dir bounds trace memory
// by spilling column batches to disk, so scaled runs fit under a
// GOMEMLIMIT the fully-resident layout cannot meet. -table-shards and
// -batch-rows tune scan parallelism and batch granularity; none of the
// three storage knobs change artifact bytes or ETags.
//
// -cache-dir enables crash-safe persistence: rendered artifacts are
// atomically spilled to disk and checksum-validated back into the cache
// on boot, so a restarted (or kill -9'd) daemon serves its pre-crash
// tables with identical ETags. -chaos turns on deterministic fault
// injection (dev/test only; see internal/fault).
//
// -stage-cache enables the Merkle stage cache: each pipeline stage's
// output is stored under a content key derived from the stage's own
// inputs and its upstream stages' keys, so a POST /v1/run that differs
// from a previous run in one late parameter (say, the scheduling
// policy) recomputes only the stages that parameter reaches and
// restores the rest byte-identically — same artifacts, same ETags,
// a fraction of the compute. -stage-cache-dir persists stage entries
// crash-safely (and implies -stage-cache); -stage-cache-mb bounds the
// in-memory tier. Corrupt entries are detected by checksum and
// recomputed: stage-cache faults cost latency, never bytes.
//
// The daemon drains gracefully on SIGINT/SIGTERM: readiness flips to
// 503, in-flight requests finish (bounded by -drain-timeout), and the
// process exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "base study seed")
	n2011 := flag.Int("n2011", 200, "base 2011 cohort size")
	n2024 := flag.Int("n2024", 600, "base 2024 cohort size")
	years := flag.String("years", "", "comma-separated trace years (default: the standard study years)")
	workers := flag.Int("workers", 0, "pipeline workers per run (0 = GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 64, "rendered-artifact cache bound in MiB")
	runCache := flag.Int("run-cache", 4, "completed runs retained for re-rendering")
	maxCohort := flag.Int("max-cohort", 20000, "per-cohort size cap for POST /v1/run")
	renderLimit := flag.Int("max-render", 32, "concurrent render requests")
	runLimit := flag.Int("max-runs", 2, "concurrent pipeline runs")
	queueTimeout := flag.Duration("queue-timeout", 10*time.Second, "max time a request waits for capacity")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
	warm := flag.Bool("warm", false, "run the base pipeline before accepting traffic")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock cap per pipeline run (0 = uncapped)")
	cacheDir := flag.String("cache-dir", "", "directory for crash-safe cache persistence (empty = in-memory only)")
	stageRetries := flag.Int("stage-retries", 0, "retries per failed retryable pipeline stage")
	stageCache := flag.Bool("stage-cache", false, "reuse per-stage pipeline outputs across runs (content-addressed; in-memory unless -stage-cache-dir)")
	stageCacheDir := flag.String("stage-cache-dir", "", "directory for crash-safe stage-cache persistence (implies -stage-cache)")
	stageCacheMB := flag.Int64("stage-cache-mb", 0, "stage-cache in-memory bound in MiB (0 = default 256)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that trip a config's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker fast-fails before a trial run")
	chaos := flag.String("chaos", "", `deterministic fault injection, e.g. "seed=1,panic=0.05,error=0.05,latency=0.1,delay=5ms[,stages=a|b]" (dev/test only)`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled, never on the public listener)")
	traceScale := flag.Int("trace-scale", 0, "replicate each trace year N× (0/1 = unscaled; changes the fingerprint)")
	spillDir := flag.String("spill-dir", "", "spill column batches here to bound trace memory (empty = fully resident)")
	tableShards := flag.Int("table-shards", 0, "scan shards per columnar aggregation (0 = worker count)")
	batchRows := flag.Int("batch-rows", 0, "rows per column batch (0 = default)")
	peers := flag.String("peers", "", "comma-separated base URLs seeding the initial membership, including this one (empty = standalone unless -join)")
	join := flag.String("join", "", "comma-separated seed replica URLs to join an existing cluster through (empty = bootstrap from -peers)")
	self := flag.String("self", "", "this replica's advertised base URL (required with -peers or -join)")
	peerSecret := flag.String("peer-secret", "", "shared secret authenticating peer endpoints (empty = unauthenticated; localhost only)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "compute-lease TTL; bounds how long a dead replica blocks takeover")
	peerStageLimit := flag.Int("peer-stage-limit", 4, "concurrent stolen trace stages executed for peers")
	probeInterval := flag.Duration("peer-probe-interval", 2*time.Second, "peer health probe period")
	suspectTimeout := flag.Duration("peer-suspect-timeout", 0, "how long a suspect member may refute before being declared dead (0 = 5x probe interval, min 3s)")
	readyzQuorum := flag.Bool("readyz-quorum", false, "make /readyz return 503 on cluster quorum loss (default: 200 with degraded detail)")
	flag.Parse()

	chaosSpec, err := fault.ParseSpec(*chaos)
	if err != nil {
		return err
	}
	if chaosSpec.Enabled() || chaosSpec.NetEnabled() {
		fmt.Fprintln(os.Stderr, "rcpt-serve: CHAOS MODE — deterministic fault injection is active; do not use in production")
	}

	cfg := rcpt.DefaultConfig()
	cfg.Seed = *seed
	cfg.N2011 = *n2011
	cfg.N2024 = *n2024
	cfg.Workers = *workers
	cfg.TraceScale = *traceScale
	cfg.Table.SpillDir = *spillDir
	cfg.Table.Shards = *tableShards
	cfg.Table.BatchRows = *batchRows
	if *years != "" {
		ys, err := parseYears(*years)
		if err != nil {
			return err
		}
		cfg.TraceYears = ys
		cfg.SimYear = ys[len(ys)-1]
	}

	opts := serve.Options{
		BaseConfig:         cfg,
		CacheBytes:         *cacheMB << 20,
		RunCacheEntries:    *runCache,
		MaxCohort:          *maxCohort,
		RenderLimit:        *renderLimit,
		RunLimit:           *runLimit,
		QueueTimeout:       *queueTimeout,
		RunTimeout:         *runTimeout,
		CacheDir:           *cacheDir,
		StageCache:         *stageCache,
		StageCacheDir:      *stageCacheDir,
		StageCacheBytes:    *stageCacheMB << 20,
		StageRetries:       *stageRetries,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		Chaos:              chaosSpec,
		ReadyzQuorumStrict: *readyzQuorum,
		PeerStageLimit:     *peerStageLimit,
	}
	if *peers != "" || *join != "" {
		if *self == "" {
			return fmt.Errorf("cluster mode (-peers or -join) requires -self (this replica's own base URL)")
		}
		opts.Cluster = &cluster.Options{
			Self:           *self,
			Secret:         *peerSecret,
			LeaseTTL:       *leaseTTL,
			ProbeInterval:  *probeInterval,
			SuspectTimeout: *suspectTimeout,
		}
		if *peers != "" {
			opts.Cluster.Peers = strings.Split(*peers, ",")
		}
		if *join != "" {
			opts.Cluster.Join = strings.Split(*join, ",")
		}
	}
	srv, err := serve.New(opts)
	if err != nil {
		return err
	}
	if *warm {
		fmt.Fprintf(os.Stderr, "rcpt-serve: warming base run %s\n", srv.BaseFingerprint())
		if err := srv.Warm(); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rcpt-serve: pprof on %s (keep this address private)\n", pln.Addr())
		pprofSrv := &http.Server{Handler: serve.PprofMux()}
		go func() {
			defer func() {
				if p := recover(); p != nil {
					fmt.Fprintf(os.Stderr, "rcpt-serve: pprof server panicked: %v\n", p)
				}
			}()
			// Best-effort debug endpoint: its lifecycle errors must never
			// take down the service it is observing.
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "rcpt-serve: pprof server: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rcpt-serve: listening on %s (base config %s)\n",
		ln.Addr(), srv.BaseFingerprint()[:12])
	if opts.Cluster != nil {
		switch {
		case len(opts.Cluster.Join) > 0:
			fmt.Fprintf(os.Stderr, "rcpt-serve: cluster mode — joining via %s, self %s\n",
				strings.Join(opts.Cluster.Join, ","), *self)
		default:
			fmt.Fprintf(os.Stderr, "rcpt-serve: cluster mode — %d seed replicas, self %s\n",
				len(opts.Cluster.Peers), *self)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				serveErr <- fmt.Errorf("serve panicked: %v", p)
			}
		}()
		serveErr <- srv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		// Listener died before any signal: that is a hard failure.
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "rcpt-serve: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Both error paths are propagated: a failed Shutdown (e.g. the drain
	// deadline expired with requests still in flight) and any error the
	// serve loop surfaced while winding down.
	return errors.Join(srv.Shutdown(drainCtx), <-serveErr)
}

// parseYears parses "-years 2011,2013" into a sorted-as-given int list.
func parseYears(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	years := make([]int, 0, len(parts))
	for _, p := range parts {
		y, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad year %q in -years", p)
		}
		years = append(years, y)
	}
	return years, nil
}
