// rcpt-trace generates synthetic cluster accounting data (one
// representative month per year) and either exports it in the
// sacct-style text format or prints per-year summaries.
//
// Usage:
//
//	rcpt-trace -years 2011,2017,2024 > accounting.txt
//	rcpt-trace -years 2011,2024 -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	yearsFlag := flag.String("years", "2011,2024", "comma-separated calendar years")
	seed := flag.Uint64("seed", 42, "generation seed")
	summary := flag.Bool("summary", false, "print per-year summaries instead of the raw log")
	flag.Parse()

	var years []int
	for _, part := range strings.Split(*yearsFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		y, err := strconv.Atoi(part)
		if err != nil {
			return fmt.Errorf("bad year %q: %w", part, err)
		}
		years = append(years, y)
	}
	if len(years) == 0 {
		return fmt.Errorf("no years given")
	}

	root := rng.New(*seed)
	var all []trace.Job
	for _, y := range years {
		jobs, err := trace.CampusModel(y).Generate(
			root.SplitNamed(fmt.Sprintf("trace-%d", y)), uint64(y)*10_000_000)
		if err != nil {
			return fmt.Errorf("year %d: %w", y, err)
		}
		all = append(all, jobs...)
	}

	if !*summary {
		return trace.WriteAccounting(os.Stdout, all)
	}
	sums := trace.SummarizeByYear(all)
	tab := report.NewTable("Cluster workload by year",
		"year", "jobs", "cpu-hours", "gpu-hours", "gpu-job share", "median cores", "p99 cores")
	for _, s := range sums {
		tab.MustAddRow(strconv.Itoa(s.Year), strconv.Itoa(s.Jobs),
			report.F(s.CPUHours, 0), report.F(s.GPUHours, 0),
			report.Pct(s.GPUJobShare), report.F(s.MedianCores, 0), report.F(s.P99Cores, 0))
	}
	return tab.WriteASCII(os.Stdout)
}
