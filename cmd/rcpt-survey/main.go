// rcpt-survey generates one synthetic survey cohort, optionally rakes it
// to the institutional frame, and either exports the responses (JSON or
// CSV) or tabulates a question.
//
// Usage:
//
//	rcpt-survey -year 2024 -n 600 -format json > cohort.ndjson
//	rcpt-survey -year 2024 -n 600 -tabulate languages
//	rcpt-survey -codebook
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/survey"
	"repro/internal/weighting"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-survey:", err)
		os.Exit(1)
	}
}

func run() error {
	year := flag.Int("year", 2024, "cohort year: 2011 or 2024")
	n := flag.Int("n", 600, "number of respondents")
	seed := flag.Uint64("seed", 42, "generation seed")
	format := flag.String("format", "json", "export format: json or csv")
	tabulate := flag.String("tabulate", "", "print a weighted tabulation of this question instead of exporting")
	rake := flag.Bool("rake", true, "post-stratify to the institutional frame")
	codebook := flag.Bool("codebook", false, "print the instrument codebook and exit")
	flag.Parse()

	if *codebook {
		fmt.Print(survey.Canonical().Codebook())
		return nil
	}

	var model *population.Model
	switch *year {
	case 2011:
		model = population.Model2011()
	case 2024:
		model = population.Model2024()
	default:
		return fmt.Errorf("unsupported cohort year %d (want 2011 or 2024)", *year)
	}
	gen, err := population.NewGenerator(model)
	if err != nil {
		return err
	}
	rs, err := gen.GenerateRespondents(rng.New(*seed), *n)
	if err != nil {
		return err
	}
	if *rake {
		res, err := weighting.Rake(rs,
			weighting.FrameMargins(model.FieldShare, model.CareerShare),
			weighting.Options{TrimRatio: 6})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "raked in %d iterations (converged=%v, effective n=%.0f)\n",
			res.Iterations, res.Converged, res.EffectiveN)
	}
	ins := gen.Instrument()

	if *tabulate != "" {
		tab, err := ins.Tabulate(*tabulate, rs)
		if err != nil {
			return err
		}
		out := report.NewTable(fmt.Sprintf("%s (%d cohort, weighted)", *tabulate, *year),
			"option", "share", "weighted count")
		for _, opt := range tab.Options() {
			out.MustAddRow(opt, report.Pct(tab.Share(opt)), report.F(tab.Counts[opt], 1))
		}
		out.Footnote = fmt.Sprintf("base %d respondents (weighted %.1f)", tab.RawBase, tab.Base)
		return out.WriteASCII(os.Stdout)
	}

	switch *format {
	case "json":
		return ins.WriteJSON(os.Stdout, rs)
	case "csv":
		return ins.WriteCSV(os.Stdout, rs)
	default:
		return fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
}
