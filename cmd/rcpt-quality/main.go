// rcpt-quality screens a survey export (NDJSON, as written by
// rcpt-survey or Instrument.WriteJSON) against the canonical data-
// quality rules, prints the flag summary, and optionally writes the
// cleaned responses (hard flags dropped) back out.
//
// Usage:
//
//	rcpt-survey -year 2024 -n 600 > raw.ndjson
//	rcpt-quality -in raw.ndjson -out clean.ndjson
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/survey"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-quality:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	in := flag.String("in", "-", "input NDJSON file ('-' for stdin)")
	out := flag.String("out", "", "write cleaned responses here (empty: report only)")
	verbose := flag.Bool("v", false, "print every flag, not just the summary")
	flag.Parse()

	ins := survey.Canonical()
	var src *os.File
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		// Read-only file: a close error after a successful read carries
		// no data, so discard it explicitly.
		defer func() { _ = f.Close() }()
		src = f
	}
	responses, err := ins.ReadJSON(src)
	if err != nil {
		return err
	}
	qr := survey.Screen(ins, responses, survey.CanonicalRules())

	counts := map[string][2]int{} // rule -> [soft, hard]
	for _, f := range qr.Flags {
		c := counts[f.Rule]
		if f.Severity == survey.Hard {
			c[1]++
		} else {
			c[0]++
		}
		counts[f.Rule] = c
	}
	tab := report.NewTable(fmt.Sprintf("Quality screening (%d responses)", len(responses)),
		"rule", "soft flags", "hard flags")
	rules := []string{"duplicate-id"}
	for _, r := range survey.CanonicalRules() {
		rules = append(rules, r.Name)
	}
	for _, rule := range rules {
		c := counts[rule]
		tab.MustAddRow(rule, fmt.Sprintf("%d", c[0]), fmt.Sprintf("%d", c[1]))
	}
	tab.Footnote = fmt.Sprintf("clean share %.1f%%; %d respondents hard-flagged",
		qr.CleanShare()*100, len(qr.HardIDs))
	if err := tab.WriteASCII(os.Stdout); err != nil {
		return err
	}
	if *verbose {
		for _, f := range qr.Flags {
			fmt.Printf("%s\t%s\t%s\t%s\n", f.ResponseID, f.Severity, f.Rule, f.Detail)
		}
	}
	if *out != "" {
		cleaned := survey.DropHard(responses, qr)
		f, cerr := os.Create(*out)
		if cerr != nil {
			return cerr
		}
		// The close error is the write error for a buffered file: losing
		// it could silently truncate the cleaned output.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing %s: %w", *out, cerr)
			}
		}()
		if err := ins.WriteJSON(f, cleaned); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d cleaned responses to %s\n", len(cleaned), *out)
	}
	return nil
}
