// rcpt-bench parses `go test -bench` text output into a stable JSON
// benchmark record, so scripts/bench.sh can commit machine-readable
// numbers (BENCH_sched.json) instead of screen-scraped logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 ./... | rcpt-bench -out BENCH_sched.json
//
// The output is deterministic for a given input: benchmarks appear in
// first-seen order, samples in input order, and no timestamps or host
// entropy are recorded beyond what `go test` itself prints (goos,
// goarch, cpu lines).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-bench:", err)
		os.Exit(1)
	}
}

// Sample is one `-count` repetition of one benchmark. BytesPerOp and
// AllocsPerOp are populated when the run used -benchmem; zero means the
// flag was off (go test never prints a 0 B/op line without it).
type Sample struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom units (jobs, resident-trace-b, ...)
}

// Benchmark groups the samples of one benchmark name (CPU suffix like
// `-8` stripped into Procs).
type Benchmark struct {
	Name            string   `json:"name"`
	Procs           int      `json:"procs,omitempty"`
	Samples         []Sample `json:"samples"`
	MinNsPerOp      float64  `json:"min_ns_per_op"`
	MeanNsPerOp     float64  `json:"mean_ns_per_op"`
	MinBytesPerOp   float64  `json:"min_bytes_per_op,omitempty"`
	MeanBytesPerOp  float64  `json:"mean_bytes_per_op,omitempty"`
	MinAllocsPerOp  float64  `json:"min_allocs_per_op,omitempty"`
	MeanAllocsPerOp float64  `json:"mean_allocs_per_op,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchtime  string       `json:"benchtime,omitempty"`
	Count      int          `json:"count,omitempty"`
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Packages   []string     `json:"packages,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func run(in io.Reader, argv []string) error {
	fs := flag.NewFlagSet("rcpt-bench", flag.ContinueOnError)
	out := fs.String("out", "-", "output file ('-' for stdout)")
	benchtime := fs.String("benchtime", "", "benchtime the run used (recorded verbatim)")
	count := fs.Int("count", 0, "count the run used (recorded verbatim)")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	rep, err := parse(in)
	if err != nil {
		return err
	}
	rep.Benchtime = *benchtime
	rep.Count = *count

	if *out == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close() // the encode failure is the error worth reporting
		return err
	}
	return f.Close()
}

// parse consumes `go test -bench` output. Unrecognized lines (PASS, ok,
// test chatter) are skipped: the tool is a filter, not a validator.
func parse(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []*Benchmark{}}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Packages = append(rep.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name Iterations (value unit)+ — anything shorter is a header
		// like "BenchmarkFoo" printed before sub-benchmarks run.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		name, procs := splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := Sample{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.NsPerOp = val
			case "B/op":
				s.BytesPerOp = val
			case "allocs/op":
				s.AllocsPerOp = val
			default:
				if s.Metrics == nil {
					s.Metrics = map[string]float64{}
				}
				s.Metrics[unit] = val
			}
		}
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name, Procs: procs}
			byName[name] = b
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		b.Samples = append(b.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range rep.Benchmarks {
		b.MinNsPerOp, b.MeanNsPerOp = minMean(b.Samples, func(s Sample) float64 { return s.NsPerOp })
		b.MinBytesPerOp, b.MeanBytesPerOp = minMean(b.Samples, func(s Sample) float64 { return s.BytesPerOp })
		b.MinAllocsPerOp, b.MeanAllocsPerOp = minMean(b.Samples, func(s Sample) float64 { return s.AllocsPerOp })
	}
	return rep, nil
}

// minMean aggregates one per-sample value across a benchmark's samples.
func minMean(samples []Sample, get func(Sample) float64) (min, mean float64) {
	sum := 0.0
	for i, s := range samples {
		v := get(s)
		if i == 0 || v < min {
			min = v
		}
		sum += v
	}
	return min, sum / float64(len(samples))
}

// splitProcs strips the trailing GOMAXPROCS suffix go test appends
// ("SimulateFCFS/campus-8" → "SimulateFCFS/campus", 8).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 0
	}
	return name[:i], p
}
