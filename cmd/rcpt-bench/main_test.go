package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulateFCFS
BenchmarkSimulateFCFS/campus-8         	       3	  19123456 ns/op	     57711 jobs
BenchmarkSimulateFCFS/campus-8         	       3	  19001002 ns/op	     57711 jobs
BenchmarkSimulateConservative/campus-8 	       3	1295987074 ns/op	     57711 jobs
BenchmarkSimulateConservativeNaive-8   	       3	5025973702 ns/op	     57711 jobs
BenchmarkSimulateFeed10x/slice-8       	       3	9100000000 ns/op	577110000 resident-trace-b	912345678 B/op	  410000 allocs/op
BenchmarkSimulateFeed10x/table-spill-8 	       3	9300000000 ns/op	  4200000 resident-trace-b	501234567 B/op	  420000 allocs/op
BenchmarkSimulateFeed10x/table-spill-8 	       3	9280000000 ns/op	  4200000 resident-trace-b	501234569 B/op	  420002 allocs/op
PASS
ok  	repro/internal/sched	57.814s
pkg: repro
BenchmarkFullPipeline-8                	       3	1754321000 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("platform %q/%q", rep.Goos, rep.Goarch)
	}
	if len(rep.Packages) != 2 || rep.Packages[0] != "repro/internal/sched" || rep.Packages[1] != "repro" {
		t.Fatalf("packages %v", rep.Packages)
	}
	if len(rep.Benchmarks) != 6 {
		t.Fatalf("got %d benchmarks, want 6", len(rep.Benchmarks))
	}
	fcfs := rep.Benchmarks[0]
	if fcfs.Name != "SimulateFCFS/campus" || fcfs.Procs != 8 {
		t.Fatalf("first benchmark %q procs %d", fcfs.Name, fcfs.Procs)
	}
	if len(fcfs.Samples) != 2 {
		t.Fatalf("fcfs samples %d", len(fcfs.Samples))
	}
	if fcfs.MinNsPerOp != 19001002 {
		t.Fatalf("fcfs min %v", fcfs.MinNsPerOp)
	}
	if want := (19123456.0 + 19001002.0) / 2; fcfs.MeanNsPerOp != want {
		t.Fatalf("fcfs mean %v want %v", fcfs.MeanNsPerOp, want)
	}
	if got := fcfs.Samples[0].Metrics["jobs"]; got != 57711 {
		t.Fatalf("jobs metric %v", got)
	}
	// The speedup ratio the acceptance criteria care about must be
	// computable from the parsed record.
	var cons, naive float64
	for _, b := range rep.Benchmarks {
		switch b.Name {
		case "SimulateConservative/campus":
			cons = b.MinNsPerOp
		case "SimulateConservativeNaive":
			naive = b.MinNsPerOp
		}
	}
	if cons == 0 || naive == 0 {
		t.Fatal("conservative pair not parsed")
	}
	if ratio := naive / cons; ratio < 3.8 || ratio > 3.9 {
		t.Fatalf("ratio %v not computed from fixture numbers", ratio)
	}
	// -benchmem columns land in dedicated fields, not the metrics map,
	// and aggregate like ns/op does.
	var slice, spill *Benchmark
	for _, b := range rep.Benchmarks {
		switch b.Name {
		case "SimulateFeed10x/slice":
			slice = b
		case "SimulateFeed10x/table-spill":
			spill = b
		}
	}
	if slice == nil || spill == nil {
		t.Fatal("feed benchmarks not parsed")
	}
	if got := slice.Samples[0].BytesPerOp; got != 912345678 {
		t.Fatalf("slice bytes/op %v", got)
	}
	if got := slice.Samples[0].AllocsPerOp; got != 410000 {
		t.Fatalf("slice allocs/op %v", got)
	}
	if _, dup := slice.Samples[0].Metrics["B/op"]; dup {
		t.Fatal("B/op leaked into the metrics map")
	}
	if got := slice.Samples[0].Metrics["resident-trace-b"]; got != 577110000 {
		t.Fatalf("resident metric %v", got)
	}
	if spill.MinBytesPerOp != 501234567 {
		t.Fatalf("spill min bytes/op %v", spill.MinBytesPerOp)
	}
	if want := (501234567.0 + 501234569.0) / 2; spill.MeanBytesPerOp != want {
		t.Fatalf("spill mean bytes/op %v want %v", spill.MeanBytesPerOp, want)
	}
	if spill.MinAllocsPerOp != 420000 || spill.MeanAllocsPerOp != 420001 {
		t.Fatalf("spill allocs aggregates %v/%v", spill.MinAllocsPerOp, spill.MeanAllocsPerOp)
	}
	// Benchmarks without -benchmem columns keep zero-valued (omitted)
	// memory aggregates.
	if fcfs.MinBytesPerOp != 0 || fcfs.MeanAllocsPerOp != 0 {
		t.Fatalf("fcfs grew memory aggregates %v/%v", fcfs.MinBytesPerOp, fcfs.MeanAllocsPerOp)
	}
}

func TestParseSkipsChatterAndHeaders(t *testing.T) {
	rep, err := parse(strings.NewReader("warming up\nBenchmarkX\nnot a bench line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from chatter", len(rep.Benchmarks))
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkY-8 3 abc ns/op\n"))
	if err == nil {
		t.Fatal("malformed value accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"SimulateFCFS/campus-8", "SimulateFCFS/campus", 8},
		{"FullPipeline-16", "FullPipeline", 16},
		{"NoSuffix", "NoSuffix", 0},
		{"Trailing-dash-", "Trailing-dash-", 0},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Fatalf("splitProcs(%q) = %q,%d want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}
