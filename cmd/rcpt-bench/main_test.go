package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulateFCFS
BenchmarkSimulateFCFS/campus-8         	       3	  19123456 ns/op	     57711 jobs
BenchmarkSimulateFCFS/campus-8         	       3	  19001002 ns/op	     57711 jobs
BenchmarkSimulateConservative/campus-8 	       3	1295987074 ns/op	     57711 jobs
BenchmarkSimulateConservativeNaive-8   	       3	5025973702 ns/op	     57711 jobs
PASS
ok  	repro/internal/sched	57.814s
pkg: repro
BenchmarkFullPipeline-8                	       3	1754321000 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("platform %q/%q", rep.Goos, rep.Goarch)
	}
	if len(rep.Packages) != 2 || rep.Packages[0] != "repro/internal/sched" || rep.Packages[1] != "repro" {
		t.Fatalf("packages %v", rep.Packages)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(rep.Benchmarks))
	}
	fcfs := rep.Benchmarks[0]
	if fcfs.Name != "SimulateFCFS/campus" || fcfs.Procs != 8 {
		t.Fatalf("first benchmark %q procs %d", fcfs.Name, fcfs.Procs)
	}
	if len(fcfs.Samples) != 2 {
		t.Fatalf("fcfs samples %d", len(fcfs.Samples))
	}
	if fcfs.MinNsPerOp != 19001002 {
		t.Fatalf("fcfs min %v", fcfs.MinNsPerOp)
	}
	if want := (19123456.0 + 19001002.0) / 2; fcfs.MeanNsPerOp != want {
		t.Fatalf("fcfs mean %v want %v", fcfs.MeanNsPerOp, want)
	}
	if got := fcfs.Samples[0].Metrics["jobs"]; got != 57711 {
		t.Fatalf("jobs metric %v", got)
	}
	// The speedup ratio the acceptance criteria care about must be
	// computable from the parsed record.
	var cons, naive float64
	for _, b := range rep.Benchmarks {
		switch b.Name {
		case "SimulateConservative/campus":
			cons = b.MinNsPerOp
		case "SimulateConservativeNaive":
			naive = b.MinNsPerOp
		}
	}
	if cons == 0 || naive == 0 {
		t.Fatal("conservative pair not parsed")
	}
	if ratio := naive / cons; ratio < 3.8 || ratio > 3.9 {
		t.Fatalf("ratio %v not computed from fixture numbers", ratio)
	}
}

func TestParseSkipsChatterAndHeaders(t *testing.T) {
	rep, err := parse(strings.NewReader("warming up\nBenchmarkX\nnot a bench line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from chatter", len(rep.Benchmarks))
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkY-8 3 abc ns/op\n"))
	if err == nil {
		t.Fatal("malformed value accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"SimulateFCFS/campus-8", "SimulateFCFS/campus", 8},
		{"FullPipeline-16", "FullPipeline", 16},
		{"NoSuffix", "NoSuffix", 0},
		{"Trailing-dash-", "Trailing-dash-", 0},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Fatalf("splitProcs(%q) = %q,%d want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}
