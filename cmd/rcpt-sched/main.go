// rcpt-sched runs the discrete-event cluster scheduler simulator over an
// accounting log (from a file or freshly generated) and reports queueing
// and utilization metrics under the chosen policy.
//
// Usage:
//
//	rcpt-sched -year 2024 -policy easy
//	rcpt-trace -years 2024 | rcpt-sched -in - -policy fcfs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-sched:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "accounting file to schedule ('-' for stdin; empty = generate)")
	year := flag.Int("year", 2024, "year to generate when no input file is given")
	seed := flag.Uint64("seed", 42, "generation seed")
	policy := flag.String("policy", "easy", "scheduling policy: fcfs or easy")
	fairshare := flag.Bool("fairshare", true, "order the queue by decayed per-user usage")
	compare := flag.Bool("compare", false, "run both policies and print both metric rows")
	flag.Parse()

	var jobs []trace.Job
	var err error
	switch *in {
	case "":
		jobs, err = trace.CampusModel(*year).Generate(
			rng.New(*seed).SplitNamed(fmt.Sprintf("trace-%d", *year)), 0)
	case "-":
		jobs, err = trace.ParseAccounting(os.Stdin)
	default:
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		// Read-only file: a close error after a successful parse carries
		// no data, so discard it explicitly.
		defer func() { _ = f.Close() }()
		jobs, err = trace.ParseAccounting(f)
	}
	if err != nil {
		return err
	}

	cluster := sched.DefaultCampusCluster()
	policies := map[string]sched.Policy{"fcfs": sched.FCFS, "easy": sched.EASYBackfill}
	pol, ok := policies[*policy]
	if !ok {
		return fmt.Errorf("unknown policy %q (want fcfs or easy)", *policy)
	}
	runs := []sched.Policy{pol}
	if *compare {
		runs = []sched.Policy{sched.FCFS, sched.EASYBackfill}
	}

	tab := report.NewTable(fmt.Sprintf("Scheduler metrics (%d jobs)", len(jobs)),
		"policy", "mean wait (h)", "median wait (h)", "p95 wait (h)",
		"cpu util", "gpu util", "backfills")
	for _, p := range runs {
		res, err := sched.Simulate(cluster, jobs, sched.Options{Policy: p, Fairshare: *fairshare})
		if err != nil {
			return err
		}
		m := res.Metrics
		tab.MustAddRow(p.String(),
			report.F(m.MeanWait/3600, 2), report.F(m.MedianWait/3600, 2),
			report.F(m.P95Wait/3600, 2),
			report.Pct(m.AvgCPUUtil), report.Pct(m.AvgGPUUtil),
			fmt.Sprintf("%d", m.BackfillStarts))
	}
	tab.Footnote = fmt.Sprintf("cluster: %d cpu nodes x %d cores, %d gpu nodes x %d gpus",
		cluster.CPUNodes, cluster.CoresPerNode, cluster.GPUNodes, cluster.GPUsPerNode)
	return tab.WriteASCII(os.Stdout)
}
