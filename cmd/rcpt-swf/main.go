// rcpt-swf converts between this project's accounting format and the
// Parallel Workloads Archive's Standard Workload Format (SWF), so
// archive traces can drive the scheduler simulator and generated traces
// can drive external simulators.
//
// Usage:
//
//	rcpt-trace -years 2024 | rcpt-swf -to swf > month.swf
//	rcpt-swf -from swf -year 2015 -gpupart 2 < archive.swf > accounting.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-swf:", err)
		os.Exit(1)
	}
}

func run() error {
	to := flag.String("to", "", "convert accounting (stdin) to this format: swf")
	from := flag.String("from", "", "convert this format (stdin) to accounting: swf")
	year := flag.Int("year", 2015, "calendar year to stamp on imported SWF jobs")
	gpuPart := flag.Int("gpupart", 0, "SWF partition number holding GPU jobs (0 = none)")
	flag.Parse()

	switch {
	case *to == "swf" && *from == "":
		jobs, err := trace.ParseAccounting(os.Stdin)
		if err != nil {
			return err
		}
		if err := trace.ExportSWF(os.Stdout, jobs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exported %d jobs to SWF\n", len(jobs))
		return nil
	case *from == "swf" && *to == "":
		jobs, err := trace.ImportSWF(os.Stdin, *year, *gpuPart)
		if err != nil {
			return err
		}
		if err := trace.WriteAccounting(os.Stdout, jobs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "imported %d jobs from SWF\n", len(jobs))
		return nil
	default:
		return fmt.Errorf("specify exactly one of -to swf or -from swf")
	}
}
