// rcpt-trends fits logistic adoption curves to module-load telemetry
// and prints each module's trend classification, inflection year,
// saturation level, and projected share.
//
// Usage:
//
//	rcpt-trends -years 2011,2014,2017,2020,2024 -project 2030
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/growth"
	"repro/internal/modlog"
	"repro/internal/report"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcpt-trends:", err)
		os.Exit(1)
	}
}

func run() error {
	yearsFlag := flag.String("years", "2011,2014,2017,2020,2024", "telemetry years (>= 4)")
	seed := flag.Uint64("seed", 42, "generation seed")
	project := flag.Float64("project", 2030, "projection year")
	flag.Parse()

	var years []int
	for _, part := range strings.Split(*yearsFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		y, err := strconv.Atoi(part)
		if err != nil {
			return fmt.Errorf("bad year %q: %w", part, err)
		}
		years = append(years, y)
	}
	if len(years) < 4 {
		return fmt.Errorf("need >= 4 years for curve fitting, got %d", len(years))
	}

	root := rng.New(*seed)
	var events []modlog.Event
	for _, y := range years {
		ev, err := modlog.CampusModulesModel(y).Generate(root.SplitNamed(fmt.Sprintf("m%d", y)))
		if err != nil {
			return fmt.Errorf("year %d: %w", y, err)
		}
		events = append(events, ev...)
	}
	agg := modlog.AggregateByYear(events)
	fy := make([]float64, len(agg))
	for i, ys := range agg {
		fy[i] = float64(ys.Year)
	}

	// Every module seen in any year.
	seen := map[string]bool{}
	for _, ys := range agg {
		for m := range ys.Shares {
			seen[m] = true
		}
	}
	modules := make([]string, 0, len(seen))
	for m := range seen {
		modules = append(modules, m)
	}
	sort.Strings(modules)

	tab := report.NewTable(fmt.Sprintf("Adoption trends fitted over %v", years),
		"module", "class", "now", "inflection", "saturation", fmt.Sprintf("projected %g", *project), "rmse")
	for _, m := range modules {
		_, shares := modlog.Series(agg, m)
		tr, err := growth.AnalyzeSeries(m, fy, shares, *project)
		if err != nil {
			return err
		}
		tab.MustAddRow(m, tr.Class,
			report.Pct(shares[len(shares)-1]),
			report.F(tr.Fit.T0, 0),
			report.Pct(minF(tr.Fit.L, 1)),
			report.Pct(tr.Projected),
			report.F(tr.Fit.RMSE, 3))
	}
	tab.Footnote = "logistic fit s(t) = L/(1+exp(-k(t-t0))); class from fitted change over the window"
	return tab.WriteASCII(os.Stdout)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
