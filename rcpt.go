// Package rcpt is the public API of the "Revisiting Computation for
// Research: Practices and Trends" study apparatus: a survey engine, a
// synthetic-respondent population model, post-stratification weighting,
// cluster accounting and module-load telemetry generators, a
// discrete-event scheduler simulator, and a registry of experiments that
// regenerate every table and figure of the reconstructed evaluation.
//
// Quick start:
//
//	arts, err := rcpt.Run(rcpt.DefaultConfig())
//	if err != nil { ... }
//	for _, e := range rcpt.Experiments() {
//	    ... render e against arts ...
//	}
//
// or simply rcpt.WriteAll(arts, "out") to materialize everything.
package rcpt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
)

// Config parameterizes a study run. See DefaultConfig for the standard
// setup.
type Config = core.Config

// Artifacts is the output of a full study run: both survey cohorts
// (raked), the multi-year cluster trace, module-load telemetry
// aggregates, and the scheduler-simulation results.
type Artifacts = core.Artifacts

// Experiment is one reproducible table or figure.
type Experiment = core.Experiment

// Experiment kinds.
const (
	KindTable  = core.KindTable
	KindFigure = core.KindFigure
)

// Scheduler policies for Config.Policy.
const (
	FCFS         = sched.FCFS
	EASYBackfill = sched.EASYBackfill
)

// DefaultConfig returns the standard study configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run executes the full study pipeline deterministically in cfg.Seed.
// Independent stages run concurrently on cfg.Workers goroutines; the
// artifacts are byte-identical for any worker count.
func Run(cfg Config) (*Artifacts, error) { return core.Run(cfg) }

// RunSequential executes the same stage graph as Run on a single
// worker, one stage at a time. It exists as the determinism reference:
// its artifacts are byte-identical to Run's.
func RunSequential(cfg Config) (*Artifacts, error) { return core.RunSequential(cfg) }

// Experiments returns the registry of tables and figures in
// presentation order.
func Experiments() []Experiment { return core.Registry() }

// Lookup resolves experiment IDs: tables T1–T12 and figures F1–F11.
func Lookup(id string) (Experiment, error) { return core.Lookup(id) }

// WriteAll renders every experiment into dir: tables as .txt (ASCII) and
// .csv, figures as .svg, plus an index.html over everything. It creates
// dir if needed and returns the list of files written.
func WriteAll(a *Artifacts, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rcpt: creating %s: %w", dir, err)
	}
	var files []string
	var index []report.IndexEntry
	write := func(name string, render func(w io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("rcpt: creating %s: %w", path, err)
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("rcpt: rendering %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("rcpt: closing %s: %w", path, err)
		}
		files = append(files, path)
		return nil
	}
	for _, e := range Experiments() {
		switch e.Kind {
		case KindTable:
			tab, err := e.Table(a)
			if err != nil {
				return nil, fmt.Errorf("rcpt: experiment %s: %w", e.ID, err)
			}
			if err := write(e.Filename()+".txt", tab.WriteASCII); err != nil {
				return nil, err
			}
			if err := write(e.Filename()+".csv", tab.WriteCSV); err != nil {
				return nil, err
			}
			var txt strings.Builder
			if err := tab.WriteASCII(&txt); err != nil {
				return nil, err
			}
			index = append(index, report.IndexEntry{
				ID: e.ID, Title: e.Title, Kind: "table", TableText: txt.String(),
			})
		case KindFigure:
			e := e
			if err := write(e.Filename()+".svg", func(w io.Writer) error {
				return e.Figure(a, w)
			}); err != nil {
				return nil, err
			}
			index = append(index, report.IndexEntry{
				ID: e.ID, Title: e.Title, Kind: "figure", SVGFile: e.Filename() + ".svg",
			})
		}
	}
	if err := write("index.html", func(w io.Writer) error {
		return report.WriteHTMLIndex(w, "rcpt — Revisiting Computation for Research", index)
	}); err != nil {
		return nil, err
	}
	// REPORT.md: every table in one Markdown document, for pasting into
	// issues and papers.
	if err := write("REPORT.md", func(w io.Writer) error {
		if _, err := io.WriteString(w, "# rcpt study report\n\n"); err != nil {
			return err
		}
		for _, e := range Experiments() {
			if e.Kind != KindTable {
				continue
			}
			tab, err := e.Table(a)
			if err != nil {
				return err
			}
			if err := tab.WriteMarkdown(w); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return files, nil
}
